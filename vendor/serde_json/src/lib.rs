//! Offline stand-in for `serde_json`: compact/pretty printing and parsing of
//! the [`serde::Content`] value tree, exposing the `to_string`,
//! `to_string_pretty` and `from_str` entry points this workspace uses.

use serde::{Content, Deserialize, Serialize};
use std::fmt;

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    fn msg(m: impl fmt::Display) -> Self {
        Error(m.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.0)
    }
}

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialize to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.ser(), None, 0)?;
    Ok(out)
}

/// Serialize to a pretty JSON string (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.ser(), Some(2), 0)?;
    Ok(out)
}

/// Deserialize from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let content = Parser { bytes: s.as_bytes(), pos: 0 }.parse_document()?;
    Ok(T::de(&content)?)
}

// ---------------------------------------------------------------------------
// Printer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Content, indent: Option<usize>, depth: usize) -> Result<()> {
    match v {
        Content::Null => out.push_str("null"),
        Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Content::I64(i) => out.push_str(&i.to_string()),
        Content::F64(f) => {
            if !f.is_finite() {
                return Err(Error::msg("JSON cannot represent a non-finite float"));
            }
            let s = f.to_string();
            out.push_str(&s);
            // `1f64` displays as "1"; serde_json prints "1.0" so a round trip
            // preserves floatness.
            if !s.contains(['.', 'e', 'E']) {
                out.push_str(".0");
            }
        }
        Content::Str(s) => write_string(out, s),
        Content::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1)?;
            }
            if !items.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push(']');
        }
        Content::Map(entries) => {
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1)?;
            }
            if !entries.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push('}');
        }
    }
    Ok(())
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * depth));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn parse_document(mut self) -> Result<Content> {
        let v = self.parse_value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(Error::msg(format!("trailing characters at byte {}", self.pos)));
        }
        Ok(v)
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::msg("unexpected end of JSON input"))
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at byte {}, found `{}`",
                b as char, self.pos, self.bytes[self.pos] as char
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Content> {
        match self.peek()? {
            b'{' => self.parse_object(),
            b'[' => self.parse_array(),
            b'"' => Ok(Content::Str(self.parse_string()?)),
            b't' => self.parse_keyword("true", Content::Bool(true)),
            b'f' => self.parse_keyword("false", Content::Bool(false)),
            b'n' => self.parse_keyword("null", Content::Null),
            b'-' | b'0'..=b'9' => self.parse_number(),
            other => Err(Error::msg(format!(
                "unexpected character `{}` at byte {}",
                other as char, self.pos
            ))),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Content) -> Result<Content> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::msg(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_object(&mut self) -> Result<Content> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                other => {
                    return Err(Error::msg(format!(
                        "expected `,` or `}}` in object, found `{}`",
                        other as char
                    )))
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Content> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                other => {
                    return Err(Error::msg(format!(
                        "expected `,` or `]` in array, found `{}`",
                        other as char
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| Error::msg("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(s),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error::msg("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::msg("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::msg("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::msg("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed by this
                            // workspace's data; reject rather than mangle.
                            let c = char::from_u32(code)
                                .ok_or_else(|| Error::msg("unpaired surrogate in \\u escape"))?;
                            s.push(c);
                        }
                        other => {
                            return Err(Error::msg(format!(
                                "invalid escape `\\{}`",
                                other as char
                            )))
                        }
                    }
                }
                _ => {
                    // Re-decode UTF-8 starting at the byte we just consumed.
                    let start = self.pos - 1;
                    let len = match b {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        0xf0..=0xf7 => 4,
                        _ => return Err(Error::msg("invalid UTF-8 in string")),
                    };
                    let slice = self
                        .bytes
                        .get(start..start + len)
                        .ok_or_else(|| Error::msg("truncated UTF-8 in string"))?;
                    let c = std::str::from_utf8(slice)
                        .map_err(|_| Error::msg("invalid UTF-8 in string"))?
                        .chars()
                        .next()
                        .expect("non-empty UTF-8 slice");
                    self.pos = start + len;
                    s.push(c);
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Content> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("invalid number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Content::I64(i));
            }
        }
        text.parse::<f64>()
            .map(Content::F64)
            .map_err(|_| Error::msg(format!("invalid number `{text}`")))
    }
}
