//! Fig. 5(d) kernel benchmark: the effectiveness of early stopping. Runtime
//! as the sources move later in the project (smaller temporal gap to the
//! destinations) — with the pruning rule the runtime drops, without it it
//! stays flat.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use prov_bitset::SetBackend;
use prov_segment::{evaluate_similarity, MaskedGraph, PgSegOptions, SimilarEvaluator};
use prov_store::ProvIndex;
use prov_workload::{generate_pd, sources_at_percentile, standard_query, PdParams};
use std::time::Duration;

fn bench_earlystop(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5d_earlystop");
    group.sample_size(10).measurement_time(Duration::from_secs(3));

    let graph = generate_pd(&PdParams::with_size(5000));
    let index = ProvIndex::build(&graph);
    let view = MaskedGraph::unmasked(&index);
    let (_, vdst) = standard_query(&graph, 2);

    for &pct in &[0.0f64, 40.0, 80.0] {
        let vsrc = sources_at_percentile(&graph, pct, 2);
        for (name, evaluator, early_stop) in [
            ("alg_pruned", SimilarEvaluator::SimProvAlg(SetBackend::Bit), true),
            ("alg_noprune", SimilarEvaluator::SimProvAlg(SetBackend::Bit), false),
            ("tst_pruned", SimilarEvaluator::SimProvTst, true),
            ("tst_noprune", SimilarEvaluator::SimProvTst, false),
        ] {
            let opts = PgSegOptions { evaluator, early_stop, ..PgSegOptions::default() };
            group.bench_with_input(BenchmarkId::new(name, format!("src@{pct}%")), &pct, |b, _| {
                b.iter(|| evaluate_similarity(&view, &vsrc, &vdst, &opts))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_earlystop);
criterion_main!(benches);
