//! Differential suite for the summarization rewrite (ISSUE 4): on random
//! multi-segment `g0` inputs,
//!
//! * the counting-based [`simulation`] ≡ the naive pair fixpoint
//!   ([`simulation_naive`]) ≡ the frozen seed sweep
//!   ([`simulation_reference`]), in both directions;
//! * the quotient-incremental [`merge`] produces the same quotient groups as
//!   the frozen recompute-every-round [`merge_reference`] (up to group
//!   relabeling — asserted via partition normalization AND, stronger, via the
//!   exact `group_of` labels, which the rewrite preserves by construction).

use proptest::prelude::*;
use prov_model::{EdgeKind, VertexId};
use prov_store::hash::FxHashMap;
use prov_store::ProvGraph;
use prov_summary::merge_reference::merge_reference;
use prov_summary::simulation::{simulation, simulation_naive, simulation_par, SimDirection};
use prov_summary::simulation_reference::simulation_reference;
use prov_summary::{build_g0, merge, PgSumQuery, PropertyAggregation, SegmentRef, G0};

/// Plan for one segment: a chain/DAG of `steps` activities over `k` activity
/// type labels, each consuming 1–2 previous entities and producing 0–2
/// (0-output steps create truncated shapes, the interesting case for
/// condition-3 domination merges).
#[derive(Debug, Clone)]
struct SegmentPlan {
    steps: Vec<(u8, Vec<prop::sample::Index>, usize)>, // (type, inputs, outputs)
}

fn segment_plan(max_types: u8) -> impl Strategy<Value = SegmentPlan> {
    proptest::collection::vec(
        (0..max_types, proptest::collection::vec(any::<prop::sample::Index>(), 1..3), 0..3usize),
        1..7,
    )
    .prop_map(|steps| SegmentPlan { steps })
}

/// Materialize segments into one backing graph.
fn build(plans: &[SegmentPlan]) -> (ProvGraph, Vec<SegmentRef>) {
    let mut g = ProvGraph::new();
    let mut segs = Vec::new();
    for plan in plans {
        let mut vertices: Vec<VertexId> = Vec::new();
        let mut edges = Vec::new();
        let seed = g.add_entity("seed");
        g.set_vprop(seed, "filename", "seed");
        let mut entities = vec![seed];
        vertices.push(seed);
        for (ty, inputs, outputs) in &plan.steps {
            let a = g.add_activity(&format!("op{ty}"));
            g.set_vprop(a, "command", format!("op{ty}"));
            vertices.push(a);
            let mut used = std::collections::BTreeSet::new();
            for idx in inputs {
                used.insert(*idx.get(&entities));
            }
            for e in used {
                edges.push(g.add_edge(EdgeKind::Used, a, e).unwrap());
            }
            for oi in 0..*outputs {
                let e = g.add_entity(&format!("f{oi}"));
                g.set_vprop(e, "filename", format!("f{oi}"));
                edges.push(g.add_edge(EdgeKind::WasGeneratedBy, e, a).unwrap());
                entities.push(e);
                vertices.push(e);
            }
        }
        segs.push(SegmentRef::new(vertices, edges));
    }
    (g, segs)
}

fn g0s(plans: &[SegmentPlan]) -> Vec<G0> {
    let (g, segs) = build(plans);
    // Coarse classes (k = 0) give the simulation the most candidates to
    // strike; k = 1 exercises the rank-space WL types.
    vec![
        build_g0(&g, &segs, &PropertyAggregation::ignore_all(), 0),
        build_g0(&g, &segs, &PgSumQuery::fig2e().aggregation, 1),
    ]
}

/// Normalize a partition labeling to first-appearance order, so two
/// partitions compare equal iff they group the same nodes together.
fn normalize(group_of: &[u32]) -> Vec<u32> {
    let mut remap: FxHashMap<u32, u32> = FxHashMap::default();
    group_of
        .iter()
        .map(|&g| {
            let next = remap.len() as u32;
            *remap.entry(g).or_insert(next)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn counting_simulation_matches_naive_and_reference(
        plans in proptest::collection::vec(segment_plan(3), 1..5),
    ) {
        for g0 in g0s(&plans) {
            for dir in [SimDirection::Out, SimDirection::In] {
                let fast = simulation(&g0, dir);
                let naive = simulation_naive(&g0, dir);
                let frozen = simulation_reference(&g0, dir);
                for v in 0..g0.len() as u32 {
                    for u in 0..g0.len() as u32 {
                        prop_assert_eq!(
                            fast.le(v, u),
                            naive[v as usize][u as usize],
                            "vs naive: dir={:?} v={} u={}", dir, v, u
                        );
                        prop_assert_eq!(
                            fast.le(v, u),
                            frozen.le(v, u),
                            "vs reference: dir={:?} v={} u={}", dir, v, u
                        );
                    }
                }
            }
        }
    }

    /// ISSUE 6: the chunk-parallel sweep (frozen-counter detection plus a
    /// synchronized remove-set reduction) must reach the same greatest
    /// simulation as the sequential counting loop, at every thread count.
    #[test]
    fn parallel_simulation_matches_sequential(
        plans in proptest::collection::vec(segment_plan(3), 1..5),
    ) {
        for g0 in g0s(&plans) {
            for dir in [SimDirection::Out, SimDirection::In] {
                let seq = simulation(&g0, dir);
                for threads in [1usize, 2, 4, 8] {
                    let par = simulation_par(&g0, dir, threads);
                    for v in 0..g0.len() as u32 {
                        for u in 0..g0.len() as u32 {
                            prop_assert_eq!(
                                par.le(v, u),
                                seq.le(v, u),
                                "dir={:?} threads={} v={} u={}", dir, threads, v, u
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn simulation_is_a_preorder(
        plans in proptest::collection::vec(segment_plan(3), 1..4),
    ) {
        for g0 in g0s(&plans) {
            let n = g0.len() as u32;
            for dir in [SimDirection::Out, SimDirection::In] {
                let rel = simulation(&g0, dir);
                for v in 0..n {
                    prop_assert!(rel.le(v, v), "reflexive at {}", v);
                }
                // Transitivity: u ≤ v ∧ v ≤ w ⟹ u ≤ w.
                for u in 0..n {
                    for v in 0..n {
                        if !rel.le(u, v) {
                            continue;
                        }
                        for w in 0..n {
                            if rel.le(v, w) {
                                prop_assert!(rel.le(u, w), "{} ≤ {} ≤ {}", u, v, w);
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn incremental_merge_matches_reference_quotient(
        plans in proptest::collection::vec(segment_plan(3), 1..5),
    ) {
        for g0 in g0s(&plans) {
            let new = merge(&g0);
            let old = merge_reference(&g0);
            // Same quotient groups up to relabeling...
            prop_assert_eq!(
                normalize(&new.group_of),
                normalize(&old.group_of),
                "partitions differ"
            );
            // ...and in fact the same labels: the incremental discipline
            // assigns dense ids in the seed's first-appearance order.
            prop_assert_eq!(&new.group_of, &old.group_of);
            prop_assert_eq!(new.members.len(), old.members.len());
        }
    }

    #[test]
    fn pgsum_end_to_end_matches_reference(
        plans in proptest::collection::vec(segment_plan(2), 1..4),
    ) {
        let (g, segs) = build(&plans);
        for q in [PgSumQuery::new(PropertyAggregation::ignore_all(), 0), PgSumQuery::fig2e()] {
            let new = prov_summary::pgsum(&g, &segs, &q);
            let old = prov_summary::pgsum_reference(&g, &segs, &q);
            prop_assert_eq!(new.vertex_count(), old.vertex_count());
            prop_assert_eq!(new.edge_count(), old.edge_count());
            prop_assert!((new.compaction_ratio() - old.compaction_ratio()).abs() < 1e-12);
        }
    }
}
