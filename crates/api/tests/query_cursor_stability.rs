//! Cursor stability under concurrent ingest (ISSUE 8 satellite): a
//! paginated `Query` walk interleaved with ingest batches must concatenate
//! to exactly the one-shot answer — structurally stable on the live store
//! via the cursor's snapshot watermark, byte-stable under a pinned session
//! — plus the regression test that pattern-engine budget exhaustion is
//! surfaced (`is_complete = false`) instead of silently truncating.

use proptest::prelude::*;
use prov_api::*;
use prov_model::{EdgeKind, VertexId, VertexKind};
use prov_store::{Direction, NodeSpec, PathPattern, PatternDir, Pipeline, PropFilter, RelSpec};

/// Ingest a linear training pipeline through the envelope: `data-v1`, then
/// `steps` runs each using the dataset and the previous weights.
fn ingest_pipeline(service: &mut ProvService, steps: usize) {
    let r = service.handle(&Request::AddAgent(AddAgentRequest { name: "alice".into() }));
    assert!(!r.is_error(), "{r:?}");
    let r = service.handle(&Request::AddArtifact(AddArtifactRequest {
        artifact: "data".into(),
        attributed_to: Some("alice".into()),
    }));
    assert!(!r.is_error(), "{r:?}");
    for i in 0..steps {
        let mut inputs: Vec<EntityRef> = vec!["data-v1".into()];
        if i > 0 {
            inputs.push(format!("weights-v{i}").as_str().into());
        }
        let r = service.handle(&Request::RecordActivity(RecordActivityRequest {
            command: format!("train --step {i}"),
            agent: Some("alice".into()),
            inputs,
            outputs: vec![OutputSpecDto {
                artifact: "weights".into(),
                props: vec![("tag".into(), "keep".into())],
            }],
            props: vec![],
        }));
        assert!(!r.is_error(), "{r:?}");
    }
}

/// One ingest batch between pages: a new run consuming the dataset and
/// producing a fresh (`tag = keep`) artifact — new descendants for every
/// vertex the walk is paginating over.
fn ingest_batch(service: &mut ProvService, round: usize) {
    let r = service.handle(&Request::RecordActivity(RecordActivityRequest {
        command: format!("concurrent --round {round}"),
        agent: Some("alice".into()),
        inputs: vec!["data-v1".into()],
        outputs: vec![OutputSpecDto {
            artifact: format!("extra{round}"),
            props: vec![("tag".into(), "keep".into())],
        }],
        props: vec![],
    }));
    assert!(!r.is_error(), "{r:?}");
}

fn query(service: &mut ProvService, request: QueryRequest) -> QueryResponse {
    match service.handle(&Request::Query(request)) {
        Response::Query(q) => q,
        other => panic!("expected a query response, got {other:?}"),
    }
}

fn one_shot(
    service: &mut ProvService,
    spec: QuerySpec,
    session: Option<SessionId>,
) -> QueryResponse {
    query(
        service,
        QueryRequest {
            query: spec,
            session,
            page_size: None,
            cursor: None,
            max_expansions: None,
            max_paths: None,
        },
    )
}

/// Walk all pages of `spec`, running `between(round)` after every page.
fn walk_pages(
    service: &mut ProvService,
    spec: QuerySpec,
    session: Option<SessionId>,
    page_size: usize,
    mut between: impl FnMut(&mut ProvService, usize),
) -> (Vec<VertexId>, usize) {
    let mut rows = Vec::new();
    let mut cursor = None;
    let mut pages = 0;
    loop {
        let page = query(
            service,
            QueryRequest {
                query: spec.clone(),
                session,
                page_size: Some(page_size),
                cursor,
                max_expansions: None,
                max_paths: None,
            },
        );
        assert!(page.is_complete);
        rows.extend_from_slice(&page.rows);
        pages += 1;
        assert!(pages <= 200, "walk must terminate");
        match page.cursor {
            Some(next) => cursor = Some(next),
            None => break,
        }
        between(service, pages);
    }
    (rows, pages)
}

fn descendants_spec() -> QuerySpec {
    QuerySpec::Pipeline(Pipeline::from_ids(vec![VertexId::new(1)]).traverse(
        &[(EdgeKind::Used, Direction::In), (EdgeKind::WasGeneratedBy, Direction::In)],
        1,
        u32::MAX,
    ))
}

fn filtered_spec() -> QuerySpec {
    QuerySpec::Pipeline(
        Pipeline::from_kind(VertexKind::Entity).filter(PropFilter::prop("tag", "keep")),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Live store: pages of a structural (unfiltered) pipeline concatenated
    /// across interleaved ingest equal the one-shot answer taken before any
    /// of the ingest happened — the snapshot watermark freezes the walk.
    #[test]
    fn paginated_walk_survives_concurrent_ingest(
        steps in 2usize..7,
        page_size in 1usize..6,
    ) {
        let mut service = ProvService::new();
        ingest_pipeline(&mut service, steps);
        let reference = one_shot(&mut service, descendants_spec(), None);
        prop_assert!(!reference.rows.is_empty());

        let (rows, pages) =
            walk_pages(&mut service, descendants_spec(), None, page_size, ingest_batch);
        prop_assert_eq!(&rows, &reference.rows, "pages must concatenate to the one-shot answer");
        prop_assert_eq!(pages, reference.rows.len().div_ceil(page_size));

        // Sanity: the ingest really changed the live answer (the walk was
        // genuinely racing something), unless it finished in one page.
        if pages > 1 {
            let after = one_shot(&mut service, descendants_spec(), None);
            prop_assert!(after.rows.len() > reference.rows.len());
        }
    }

    /// Pinned session: property-filtered pipelines are byte-stable across
    /// pages too, because the session freezes the graph the filters read.
    #[test]
    fn pinned_session_walk_is_byte_stable(
        steps in 2usize..7,
        page_size in 1usize..6,
    ) {
        let mut service = ProvService::new();
        ingest_pipeline(&mut service, steps);
        let session = match service.handle(&Request::OpenSession(OpenSessionRequest {
            src: vec!["data-v1".into()],
            dst: vec![format!("weights-v{steps}").as_str().into()],
            boundary: BoundarySpec::none(),
            options: SegmentOptions::default(),
        })) {
            Response::Session(s) => s.session,
            other => panic!("expected session, got {other:?}"),
        };
        let reference = one_shot(&mut service, filtered_spec(), Some(session));
        prop_assert_eq!(reference.rows.len(), steps, "one keep-tagged artifact per run");

        let (rows, _) = walk_pages(
            &mut service,
            filtered_spec(),
            Some(session),
            page_size,
            |service, round| {
                ingest_batch(service, round);
                // New keep-tagged entities land in the live store…
                let live = one_shot(service, filtered_spec(), None);
                assert!(live.rows.len() > steps);
            },
        );
        // …but never leak into the pinned walk.
        prop_assert_eq!(&rows, &reference.rows);
    }
}

#[test]
fn stale_cursors_are_rejected_as_invalid_query() {
    let mut service = ProvService::new();
    ingest_pipeline(&mut service, 3);
    let response = service.handle(&Request::Query(QueryRequest {
        query: descendants_spec(),
        session: None,
        page_size: Some(2),
        // A watermark from "the future" (another database): must be refused,
        // not silently clamped.
        cursor: Some(prov_store::QueryCursor { vertices: 10_000, edges: 10_000, after: 0 }),
        max_expansions: None,
        max_paths: None,
    }));
    match response {
        Response::Error(e) => {
            assert_eq!(e.code, ErrorCode::InvalidQuery);
            assert!(e.message.contains("stale cursor"), "{}", e.message);
        }
        other => panic!("expected an error, got {other:?}"),
    }
}

/// Regression (ISSUE 8 satellite): pattern-engine budget exhaustion used to
/// be observable only by calling `MatchOutcome::is_complete` in-process; on
/// the wire a truncated answer was indistinguishable from a complete one.
/// The query envelope must say so.
#[test]
fn pattern_budget_exhaustion_is_surfaced_not_silent() {
    let mut service = ProvService::new();
    ingest_pipeline(&mut service, 6);
    // Bounded star => outside the lowerable family => materializing engine.
    let pattern = PathPattern::node(NodeSpec::of_kind(VertexKind::Entity)).then(
        RelSpec::star(&[EdgeKind::Used, EdgeKind::WasGeneratedBy], PatternDir::Forward, 0, 4),
        NodeSpec::any(),
    );
    let complete = query(
        &mut service,
        QueryRequest {
            query: QuerySpec::Pattern(pattern.clone()),
            session: None,
            page_size: None,
            cursor: None,
            max_expansions: None,
            max_paths: None,
        },
    );
    assert!(complete.is_complete, "default budget finishes this graph");
    assert!(!complete.rows.is_empty());

    let truncated = query(
        &mut service,
        QueryRequest {
            query: QuerySpec::Pattern(pattern),
            session: None,
            page_size: None,
            cursor: None,
            max_expansions: Some(3),
            max_paths: None,
        },
    );
    assert!(!truncated.is_complete, "a 3-expansion budget cannot finish");
    assert!(
        truncated.rows.len() < complete.rows.len(),
        "truncation must actually have dropped rows for this regression test to bite"
    );
}
