//! Deterministic ingest-stream generator for serving-loop benchmarks.
//!
//! The `Pd` generator ([`crate::pd`]) materializes a whole collaborative
//! project at once; the fig7 interleave benchmark instead needs the same
//! workload *as a stream* — activity records arriving batch by batch against
//! a live database, inputs drawn from whatever entities exist at arrival
//! time. [`ActivityStream`] produces that: the `Pd` parameterization
//! (Poisson in/out degrees, Zipf-by-recency input selection, versioned
//! artifacts) decoupled from any particular store, so the benchmark driver
//! resolves the picks against the database it is ingesting into.
//!
//! The stream is fully deterministic per seed: a rebuild-policy baseline run
//! and a refresh-policy run replay byte-identical ingest sequences.

use crate::dist::{poisson, ZipfTable};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of the activity stream (the `Pd` shape, streamed).
#[derive(Debug, Clone, Copy)]
pub struct StreamParams {
    /// Mean extra inputs `λi` (inputs per activity = 1 + Poisson(λi)).
    pub lambda_in: f64,
    /// Mean extra outputs `λo` (outputs per activity = 1 + Poisson(λo)).
    pub lambda_out: f64,
    /// Input-selection Zipf skew `se` over recency (rank 1 = newest entity).
    pub se: f64,
    /// Probability an output is a new version of an existing artifact
    /// rather than the first version of a fresh one.
    pub reuse: f64,
    /// Distinct command templates cycled through activity records.
    pub commands: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for StreamParams {
    fn default() -> Self {
        // The paper's Pd defaults (Sec. V) plus its 0.7 artifact-reuse rate.
        StreamParams {
            lambda_in: 2.0,
            lambda_out: 2.0,
            se: 1.5,
            reuse: 0.7,
            commands: 17,
            seed: 42,
        }
    }
}

/// One streamed activity record, store-agnostic: inputs are Zipf recency
/// ranks into the consumer's current entity pool, outputs are artifact base
/// names (the consumer assigns versions).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamActivity {
    /// Command line of the activity.
    pub command: String,
    /// Distinct 1-based recency ranks into the consumer's entity pool at
    /// ingest time (1 = newest). Always within `1..=pool_len` of the
    /// [`ActivityStream::next_activity`] call that produced the record.
    pub input_ranks: Vec<usize>,
    /// Output artifact base names, to be versioned by the consumer.
    pub outputs: Vec<String>,
}

/// The deterministic activity source.
#[derive(Debug)]
pub struct ActivityStream {
    params: StreamParams,
    rng: StdRng,
    pick: ZipfTable,
    produced: usize,
    artifacts: usize,
}

impl ActivityStream {
    /// A stream expecting entity pools up to `max_pool` (the Zipf rank table
    /// is sized once; larger pools are served at clamped rank).
    pub fn new(params: StreamParams, max_pool: usize) -> ActivityStream {
        ActivityStream {
            rng: StdRng::seed_from_u64(params.seed),
            pick: ZipfTable::new(max_pool.max(1) + 1, params.se),
            params,
            produced: 0,
            artifacts: 0,
        }
    }

    /// Number of activities produced so far.
    pub fn produced(&self) -> usize {
        self.produced
    }

    /// The next activity against a consumer pool of `pool_len` entities.
    /// With an empty pool the record has no inputs (a source activity).
    pub fn next_activity(&mut self, pool_len: usize) -> StreamActivity {
        let command =
            format!("cmd{} --run {}", self.produced % self.params.commands, self.produced);
        let want = 1 + poisson(&mut self.rng, self.params.lambda_in) as usize;
        let mut input_ranks: Vec<usize> = Vec::with_capacity(want);
        let mut attempts = 0;
        while input_ranks.len() < want.min(pool_len) && attempts < 8 * want {
            attempts += 1;
            let rank = self.pick.sample_rank(&mut self.rng, pool_len);
            if !input_ranks.contains(&rank) {
                input_ranks.push(rank);
            }
        }
        let n_out = 1 + poisson(&mut self.rng, self.params.lambda_out) as usize;
        let mut outputs = Vec::with_capacity(n_out);
        for _ in 0..n_out {
            let artifact = if self.artifacts > 0 && self.rng.gen::<f64>() < self.params.reuse {
                self.rng.gen_range(0..self.artifacts)
            } else {
                self.artifacts += 1;
                self.artifacts - 1
            };
            outputs.push(format!("artifact{artifact}"));
        }
        self.produced += 1;
        StreamActivity { command, input_ranks, outputs }
    }

    /// The next `size` activities against a pool that starts at `pool_len`
    /// and grows by each record's outputs (the consumer appends output
    /// entities to its pool in order — [`StreamActivity::input_ranks`] stay
    /// valid under exactly that discipline).
    pub fn batch(&mut self, pool_len: usize, size: usize) -> Vec<StreamActivity> {
        let mut pool = pool_len;
        let mut out = Vec::with_capacity(size);
        for _ in 0..size {
            let record = self.next_activity(pool);
            pool += record.outputs.len();
            out.push(record);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_is_deterministic_per_seed() {
        let mut a = ActivityStream::new(StreamParams::default(), 10_000);
        let mut b = ActivityStream::new(StreamParams::default(), 10_000);
        let batch_a = a.batch(3, 50);
        let batch_b = b.batch(3, 50);
        assert_eq!(batch_a, batch_b);
        assert_eq!(a.produced(), 50);
        let mut c = ActivityStream::new(StreamParams { seed: 7, ..Default::default() }, 10_000);
        assert_ne!(batch_a, c.batch(3, 50), "different seeds should differ");
    }

    #[test]
    fn input_ranks_are_valid_and_distinct() {
        let mut s = ActivityStream::new(StreamParams::default(), 10_000);
        let mut pool = 0usize;
        for step in 0..200 {
            let rec = s.next_activity(pool);
            assert!(rec.input_ranks.len() <= pool, "step {step}: more inputs than pool");
            for &r in &rec.input_ranks {
                assert!((1..=pool).contains(&r), "step {step}: rank {r} out of 1..={pool}");
            }
            let mut dedup = rec.input_ranks.clone();
            dedup.sort_unstable();
            dedup.dedup();
            assert_eq!(dedup.len(), rec.input_ranks.len(), "step {step}: duplicate rank");
            assert!(!rec.outputs.is_empty());
            pool += rec.outputs.len();
        }
        assert!(pool > 200, "outputs should accumulate (λo = 2)");
    }

    #[test]
    fn degree_means_track_lambdas() {
        let mut s = ActivityStream::new(StreamParams::default(), 100_000);
        // Warm pool so input draws are not pool-limited.
        let mut pool = 500usize;
        let (mut ins, mut outs) = (0usize, 0usize);
        let n = 2_000;
        for _ in 0..n {
            let rec = s.next_activity(pool);
            ins += rec.input_ranks.len();
            outs += rec.outputs.len();
            pool += rec.outputs.len();
        }
        let avg_in = ins as f64 / n as f64;
        let avg_out = outs as f64 / n as f64;
        assert!((avg_out - 3.0).abs() < 0.3, "avg_out={avg_out}");
        assert!(avg_in > 2.0 && avg_in < 3.2, "avg_in={avg_in}");
    }

    #[test]
    fn artifacts_gather_versions() {
        let mut s = ActivityStream::new(StreamParams::default(), 10_000);
        let batch = s.batch(0, 300);
        let mut counts: std::collections::BTreeMap<&str, usize> = Default::default();
        for rec in &batch {
            for o in &rec.outputs {
                *counts.entry(o.as_str()).or_default() += 1;
            }
        }
        assert!(counts.values().any(|&c| c >= 3), "reuse=0.7 should revisit artifacts");
        assert!(counts.len() > 10, "fresh artifacts should keep appearing");
    }
}
