//! The injectable I/O layer every durable byte flows through.
//!
//! [`WalStorage`](crate::storage::WalStorage) never touches the filesystem
//! directly: it speaks [`Io`], a flat single-directory file namespace with
//! exactly the primitives a write-ahead log needs (append, whole-file read,
//! atomic replace-by-rename, truncate, fsync). That indirection is the whole
//! point of this module — the deterministic
//! [`FailpointIo`](crate::storage::FailpointIo) wrapper can then inject
//! crashes, short writes, bit flips, and fsync failures at byte granularity,
//! and the kill-point harness can fork [`MemIo`] "disks" to simulate a crash
//! at every offset.
//!
//! This file (and only this file) is allowed to use `std::fs`; the
//! `raw-io` lint rule in `prov-check` keeps every other byte injectable.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// An I/O failure as seen by the storage engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IoError {
    /// The operation failed (disk error, injected fsync failure, ...).
    Failed(String),
    /// An injected crash: the "process" died mid-operation. Every subsequent
    /// call on the same handle fails with this too, so nothing written after
    /// the crash point can leak to "disk".
    Crashed,
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Failed(msg) => write!(f, "io failure: {msg}"),
            IoError::Crashed => write!(f, "crashed (injected failpoint)"),
        }
    }
}

/// I/O result alias.
pub type IoResult<T> = Result<T, IoError>;

/// Random-access byte source over one stored file — the abstraction the
/// lazy snapshot decoder range-reads deferred columns through. A source
/// stays readable after the file it was opened on is removed or replaced
/// (the `std::fs` backend keeps the descriptor open; compaction forces
/// materialization before sweeping the old snapshot regardless).
#[allow(clippy::len_without_is_empty)] // a zero-length snapshot is invalid, not "empty"
pub trait ColumnSource: std::fmt::Debug + Send + Sync {
    /// Total length of the file in bytes.
    fn len(&self) -> u64;

    /// Read exactly `len` bytes at `offset`; a short read is an error.
    fn read_range(&self, offset: u64, len: usize) -> IoResult<Vec<u8>>;
}

/// Slice `bytes[offset..offset + len]`, surfacing an out-of-range request as
/// a typed error naming the file.
pub(crate) fn slice_range(bytes: &[u8], name: &str, offset: u64, len: usize) -> IoResult<Vec<u8>> {
    usize::try_from(offset)
        .ok()
        .and_then(|start| start.checked_add(len).map(|end| (start, end)))
        .and_then(|(start, end)| bytes.get(start..end))
        .map(<[u8]>::to_vec)
        .ok_or_else(|| {
            IoError::Failed(format!(
                "read_range {name}: {offset}+{len} runs past the end ({} bytes)",
                bytes.len()
            ))
        })
}

/// A flat, single-directory file namespace — the only surface the storage
/// engine writes bytes through.
///
/// Durability contract: data passed to [`Io::append`]/[`Io::write`] is only
/// guaranteed on "disk" after a successful [`Io::sync`] of that file;
/// [`Io::rename`] is atomic and durable once it returns (the `std::fs`
/// backend fsyncs the directory).
pub trait Io: std::fmt::Debug + Send + Sync {
    /// Names of all existing files, sorted.
    fn list(&self) -> IoResult<Vec<String>>;

    /// Entire contents of `name`, or `None` if it does not exist.
    fn read(&self, name: &str) -> IoResult<Option<Vec<u8>>>;

    /// `len` bytes of `name` starting at `offset`, or `None` if the file
    /// does not exist; a range running past the end is an error. The default
    /// buffers the whole file and slices — real backends override with
    /// genuine range reads.
    fn read_range(&self, name: &str, offset: u64, len: usize) -> IoResult<Option<Vec<u8>>> {
        match self.read(name)? {
            Some(bytes) => slice_range(&bytes, name, offset, len).map(Some),
            None => Ok(None),
        }
    }

    /// An open random-access handle on `name` for lazy column reads, when
    /// the backend can serve one without buffering the whole file. `None`
    /// (the default) tells the caller to fall back to a buffered source —
    /// the fault-injection wrapper relies on this so injected corruption
    /// keeps flowing through its `read` path.
    fn column_source(&self, name: &str) -> IoResult<Option<Box<dyn ColumnSource>>> {
        let _ = name;
        Ok(None)
    }

    /// Append `data` to `name`, creating it if absent.
    fn append(&mut self, name: &str, data: &[u8]) -> IoResult<()>;

    /// Replace the contents of `name` with `data`, creating it if absent.
    fn write(&mut self, name: &str, data: &[u8]) -> IoResult<()>;

    /// Shrink `name` to `len` bytes (recovery's torn-tail truncation).
    fn truncate(&mut self, name: &str, len: u64) -> IoResult<()>;

    /// Flush `name` to durable storage (fsync).
    fn sync(&mut self, name: &str) -> IoResult<()>;

    /// Atomically rename `from` to `to`, replacing any existing `to`.
    fn rename(&mut self, from: &str, to: &str) -> IoResult<()>;

    /// Delete `name`; succeeds silently when it does not exist.
    fn remove(&mut self, name: &str) -> IoResult<()>;
}

fn fs_err(op: &str, name: &str, e: std::io::Error) -> IoError {
    IoError::Failed(format!("{op} {name}: {e}"))
}

/// The real-filesystem backend: one directory, one file per [`Io`] name.
#[derive(Debug)]
pub struct StdIo {
    dir: std::path::PathBuf,
}

impl StdIo {
    /// Open (creating if needed) `dir` as a storage directory.
    pub fn open(dir: impl Into<std::path::PathBuf>) -> IoResult<StdIo> {
        let dir = dir.into();
        // lint-ok(raw-io): StdIo IS the std::fs backend behind the Io trait.
        std::fs::create_dir_all(&dir)
            .map_err(|e| fs_err("create dir", &dir.display().to_string(), e))?;
        Ok(StdIo { dir })
    }

    fn path(&self, name: &str) -> std::path::PathBuf {
        self.dir.join(name)
    }

    /// Fsync the directory itself so renames/creations survive power loss.
    fn sync_dir(&self) -> IoResult<()> {
        // lint-ok(raw-io): directory fsync for rename durability.
        let d = std::fs::File::open(&self.dir)
            .map_err(|e| fs_err("open dir", &self.dir.display().to_string(), e))?;
        d.sync_all().map_err(|e| fs_err("sync dir", &self.dir.display().to_string(), e))
    }
}

impl Io for StdIo {
    fn list(&self) -> IoResult<Vec<String>> {
        let mut names = Vec::new();
        // lint-ok(raw-io): StdIo IS the std::fs backend behind the Io trait.
        let entries = std::fs::read_dir(&self.dir)
            .map_err(|e| fs_err("list", &self.dir.display().to_string(), e))?;
        for entry in entries {
            let entry = entry.map_err(|e| fs_err("list", &self.dir.display().to_string(), e))?;
            if let Some(name) = entry.file_name().to_str() {
                names.push(name.to_string());
            }
        }
        names.sort();
        Ok(names)
    }

    fn read(&self, name: &str) -> IoResult<Option<Vec<u8>>> {
        // lint-ok(raw-io): StdIo IS the std::fs backend behind the Io trait.
        match std::fs::read(self.path(name)) {
            Ok(bytes) => Ok(Some(bytes)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(fs_err("read", name, e)),
        }
    }

    fn read_range(&self, name: &str, offset: u64, len: usize) -> IoResult<Option<Vec<u8>>> {
        use std::io::{Read as _, Seek as _};
        // lint-ok(raw-io): StdIo IS the std::fs backend behind the Io trait.
        let mut f = match std::fs::File::open(self.path(name)) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(fs_err("read_range", name, e)),
        };
        f.seek(std::io::SeekFrom::Start(offset)).map_err(|e| fs_err("read_range", name, e))?;
        let mut buf = vec![0u8; len];
        f.read_exact(&mut buf).map_err(|e| fs_err("read_range", name, e))?;
        Ok(Some(buf))
    }

    fn column_source(&self, name: &str) -> IoResult<Option<Box<dyn ColumnSource>>> {
        // lint-ok(raw-io): StdIo IS the std::fs backend behind the Io trait.
        let f = match std::fs::File::open(self.path(name)) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(fs_err("open column source", name, e)),
        };
        let len = f.metadata().map_err(|e| fs_err("stat column source", name, e))?.len();
        Ok(Some(Box::new(FileColumnSource { name: name.to_string(), file: Mutex::new(f), len })))
    }

    fn append(&mut self, name: &str, data: &[u8]) -> IoResult<()> {
        use std::io::Write as _;
        // lint-ok(raw-io): StdIo IS the std::fs backend behind the Io trait.
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .create(true)
            .open(self.path(name))
            .map_err(|e| fs_err("append", name, e))?;
        f.write_all(data).map_err(|e| fs_err("append", name, e))
    }

    fn write(&mut self, name: &str, data: &[u8]) -> IoResult<()> {
        // lint-ok(raw-io): StdIo IS the std::fs backend behind the Io trait.
        std::fs::write(self.path(name), data).map_err(|e| fs_err("write", name, e))
    }

    fn truncate(&mut self, name: &str, len: u64) -> IoResult<()> {
        // lint-ok(raw-io): StdIo IS the std::fs backend behind the Io trait.
        let f = std::fs::OpenOptions::new()
            .write(true)
            .open(self.path(name))
            .map_err(|e| fs_err("truncate", name, e))?;
        f.set_len(len).map_err(|e| fs_err("truncate", name, e))?;
        f.sync_all().map_err(|e| fs_err("truncate", name, e))
    }

    fn sync(&mut self, name: &str) -> IoResult<()> {
        // lint-ok(raw-io): StdIo IS the std::fs backend behind the Io trait.
        let f = std::fs::File::open(self.path(name)).map_err(|e| fs_err("sync", name, e))?;
        f.sync_all().map_err(|e| fs_err("sync", name, e))
    }

    fn rename(&mut self, from: &str, to: &str) -> IoResult<()> {
        // lint-ok(raw-io): StdIo IS the std::fs backend behind the Io trait.
        std::fs::rename(self.path(from), self.path(to)).map_err(|e| fs_err("rename", from, e))?;
        self.sync_dir()
    }

    fn remove(&mut self, name: &str) -> IoResult<()> {
        // lint-ok(raw-io): StdIo IS the std::fs backend behind the Io trait.
        match std::fs::remove_file(self.path(name)) {
            Ok(()) => self.sync_dir(),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(fs_err("remove", name, e)),
        }
    }
}

/// [`ColumnSource`] over an open file descriptor: range reads survive the
/// file later being unlinked or replaced (the snapshot sweep after a
/// compaction), because the descriptor pins the inode.
#[derive(Debug)]
struct FileColumnSource {
    name: String,
    file: Mutex<std::fs::File>,
    len: u64,
}

impl ColumnSource for FileColumnSource {
    fn len(&self) -> u64 {
        self.len
    }

    fn read_range(&self, offset: u64, len: usize) -> IoResult<Vec<u8>> {
        use std::io::{Read as _, Seek as _};
        let mut f = self.file.lock().expect("column source lock");
        f.seek(std::io::SeekFrom::Start(offset))
            .map_err(|e| fs_err("read_range", &self.name, e))?;
        let mut buf = vec![0u8; len];
        f.read_exact(&mut buf).map_err(|e| fs_err("read_range", &self.name, e))?;
        Ok(buf)
    }
}

/// The in-memory backend: a shared map of file name → bytes.
///
/// `Clone` shares the underlying "disk" (the handle is `Arc`ed), which is how
/// tests model a machine: keep one handle as the disk, give a clone to the
/// storage engine, "reboot" by opening a fresh engine over another clone.
/// [`MemIo::fork`] deep-copies the disk — the crash-state constructor of the
/// kill-point harness.
#[derive(Debug, Clone, Default)]
pub struct MemIo {
    files: Arc<Mutex<BTreeMap<String, Vec<u8>>>>,
    /// Byte-range read log `(name, offset, len)` — every `read_range` and
    /// whole-file `read` that flows through the [`Io`] trait. Tests use it to
    /// prove lazy decode never touched a deferred column. Clones share the
    /// log (the disk handle observes the engine); forks start fresh.
    reads: Arc<Mutex<Vec<(String, u64, u64)>>>,
}

impl MemIo {
    /// An empty disk.
    pub fn new() -> MemIo {
        MemIo::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BTreeMap<String, Vec<u8>>> {
        self.files.lock().expect("MemIo lock")
    }

    /// A deep copy of the current disk state, independent of the original:
    /// mutations on either side are invisible to the other.
    pub fn fork(&self) -> MemIo {
        MemIo { files: Arc::new(Mutex::new(self.lock().clone())), reads: Arc::default() }
    }

    /// A deep copy with `name` truncated to its first `len` bytes — the
    /// "crashed after `len` durable bytes" state the kill-point sweep feeds
    /// back into recovery.
    pub fn fork_truncated(&self, name: &str, len: usize) -> MemIo {
        let forked = self.fork();
        {
            let mut files = forked.lock();
            if let Some(bytes) = files.get_mut(name) {
                bytes.truncate(len);
            }
        }
        forked
    }

    /// Current contents of `name`, if present.
    pub fn file(&self, name: &str) -> Option<Vec<u8>> {
        self.lock().get(name).cloned()
    }

    /// Overwrite `name` directly (test corruption injection).
    pub fn set_file(&self, name: &str, bytes: Vec<u8>) {
        self.lock().insert(name.to_string(), bytes);
    }

    fn log_read(&self, name: &str, offset: u64, len: u64) {
        self.reads.lock().expect("MemIo reads lock").push((name.to_string(), offset, len));
    }

    /// Every `(name, offset, len)` read through the [`Io`] trait since the
    /// last [`MemIo::clear_range_reads`] — whole-file reads log as
    /// `(name, 0, file_len)`.
    pub fn range_reads(&self) -> Vec<(String, u64, u64)> {
        self.reads.lock().expect("MemIo reads lock").clone()
    }

    /// Reset the read log.
    pub fn clear_range_reads(&self) {
        self.reads.lock().expect("MemIo reads lock").clear();
    }
}

/// [`ColumnSource`] over a [`MemIo`] file: serves slices of the in-memory
/// bytes, flowing every access through the shared read log.
#[derive(Debug)]
struct MemColumnSource {
    io: MemIo,
    name: String,
    len: u64,
}

impl ColumnSource for MemColumnSource {
    fn len(&self) -> u64 {
        self.len
    }

    fn read_range(&self, offset: u64, len: usize) -> IoResult<Vec<u8>> {
        match self.io.read_range(&self.name, offset, len)? {
            Some(bytes) => Ok(bytes),
            None => Err(IoError::Failed(format!("read_range {}: file vanished", self.name))),
        }
    }
}

impl Io for MemIo {
    fn list(&self) -> IoResult<Vec<String>> {
        Ok(self.lock().keys().cloned().collect())
    }

    fn read(&self, name: &str) -> IoResult<Option<Vec<u8>>> {
        let bytes = self.lock().get(name).cloned();
        if let Some(b) = &bytes {
            self.log_read(name, 0, b.len() as u64);
        }
        Ok(bytes)
    }

    fn read_range(&self, name: &str, offset: u64, len: usize) -> IoResult<Option<Vec<u8>>> {
        let sliced = match self.lock().get(name) {
            Some(bytes) => Some(slice_range(bytes, name, offset, len)?),
            None => None,
        };
        if sliced.is_some() {
            self.log_read(name, offset, len as u64);
        }
        Ok(sliced)
    }

    fn column_source(&self, name: &str) -> IoResult<Option<Box<dyn ColumnSource>>> {
        let len = match self.lock().get(name) {
            Some(bytes) => bytes.len() as u64,
            None => return Ok(None),
        };
        Ok(Some(Box::new(MemColumnSource { io: self.clone(), name: name.to_string(), len })))
    }

    fn append(&mut self, name: &str, data: &[u8]) -> IoResult<()> {
        self.lock().entry(name.to_string()).or_default().extend_from_slice(data);
        Ok(())
    }

    fn write(&mut self, name: &str, data: &[u8]) -> IoResult<()> {
        self.lock().insert(name.to_string(), data.to_vec());
        Ok(())
    }

    fn truncate(&mut self, name: &str, len: u64) -> IoResult<()> {
        match self.lock().get_mut(name) {
            Some(bytes) => {
                bytes.truncate(len as usize);
                Ok(())
            }
            None => Err(IoError::Failed(format!("truncate {name}: no such file"))),
        }
    }

    fn sync(&mut self, _name: &str) -> IoResult<()> {
        Ok(())
    }

    fn rename(&mut self, from: &str, to: &str) -> IoResult<()> {
        let mut files = self.lock();
        match files.remove(from) {
            Some(bytes) => {
                files.insert(to.to_string(), bytes);
                Ok(())
            }
            None => Err(IoError::Failed(format!("rename {from}: no such file"))),
        }
    }

    fn remove(&mut self, name: &str) -> IoResult<()> {
        self.lock().remove(name);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(io: &mut dyn Io) {
        assert_eq!(io.read("wal").unwrap(), None);
        io.append("wal", b"abc").unwrap();
        io.append("wal", b"def").unwrap();
        assert_eq!(io.read("wal").unwrap().unwrap(), b"abcdef");
        io.truncate("wal", 4).unwrap();
        assert_eq!(io.read("wal").unwrap().unwrap(), b"abcd");
        io.sync("wal").unwrap();
        io.write("snapshot.tmp", b"SNAP").unwrap();
        io.rename("snapshot.tmp", "snapshot-1").unwrap();
        assert_eq!(io.read("snapshot.tmp").unwrap(), None);
        assert_eq!(io.read("snapshot-1").unwrap().unwrap(), b"SNAP");
        assert_eq!(io.list().unwrap(), vec!["snapshot-1".to_string(), "wal".to_string()]);
        io.remove("wal").unwrap();
        io.remove("wal").unwrap(); // idempotent
        assert_eq!(io.list().unwrap(), vec!["snapshot-1".to_string()]);
        // Overwrite-in-place via write.
        io.write("snapshot-1", b"SNAP2").unwrap();
        assert_eq!(io.read("snapshot-1").unwrap().unwrap(), b"SNAP2");
    }

    #[test]
    fn mem_io_implements_the_contract() {
        exercise(&mut MemIo::new());
    }

    #[test]
    fn std_io_implements_the_contract() {
        let dir = std::env::temp_dir().join(format!("prov-stdio-{}", std::process::id()));
        // lint-ok(raw-io): test teardown of the StdIo contract test directory.
        let _ = std::fs::remove_dir_all(&dir);
        let mut io = StdIo::open(&dir).unwrap();
        exercise(&mut io);
        // lint-ok(raw-io): test teardown of the StdIo contract test directory.
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mem_io_clones_share_forks_do_not() {
        let disk = MemIo::new();
        let mut engine = disk.clone();
        engine.append("wal", b"record").unwrap();
        assert_eq!(disk.file("wal").unwrap(), b"record", "clones share the disk");
        let fork = disk.fork_truncated("wal", 3);
        assert_eq!(fork.file("wal").unwrap(), b"rec");
        engine.append("wal", b"more").unwrap();
        assert_eq!(fork.file("wal").unwrap(), b"rec", "forks are independent");
        assert_eq!(disk.file("wal").unwrap(), b"recordmore");
    }

    #[test]
    fn errors_display_and_compare() {
        assert!(IoError::Failed("disk full".into()).to_string().contains("disk full"));
        assert!(IoError::Crashed.to_string().contains("crashed"));
        assert_ne!(IoError::Crashed, IoError::Failed("x".into()));
        let mut io = MemIo::new();
        assert!(io.truncate("nope", 0).is_err());
        assert!(io.rename("nope", "x").is_err());
    }
}
