//! Fig. 5(b) kernel benchmark: runtime vs input-selection skew `se`.
//! The paper's observation — all methods are stable w.r.t. `se` — shows up as
//! near-identical timings across the three parameterizations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use prov_bitset::SetBackend;
use prov_segment::{evaluate_similarity, MaskedGraph, PgSegOptions, SimilarEvaluator};
use prov_store::ProvIndex;
use prov_workload::{generate_pd, standard_query, PdParams};
use std::time::Duration;

fn bench_skew(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5b_skew");
    group.sample_size(10).measurement_time(Duration::from_secs(3));

    for &se in &[1.1f64, 1.6, 2.1] {
        let graph = generate_pd(&PdParams { se, ..PdParams::with_size(1000) });
        let index = ProvIndex::build(&graph);
        let view = MaskedGraph::unmasked(&index);
        let (vsrc, vdst) = standard_query(&graph, 2);
        for (name, evaluator) in [
            ("cflrb", SimilarEvaluator::CflrB(SetBackend::Bit)),
            ("simprov_alg", SimilarEvaluator::SimProvAlg(SetBackend::Bit)),
            ("simprov_tst", SimilarEvaluator::SimProvTst),
        ] {
            let opts = PgSegOptions { evaluator, ..PgSegOptions::default() };
            group.bench_with_input(BenchmarkId::new(name, format!("se={se}")), &se, |b, _| {
                b.iter(|| evaluate_similarity(&view, &vsrc, &vdst, &opts))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_skew);
criterion_main!(benches);
