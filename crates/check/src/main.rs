//! `prov-check` — the workspace lint gate (`just lint-strict`).
//!
//! Walks every workspace `.rs` file (plus `vendor/rayon-core`, the one
//! vendored crate a rule targets), applies the rules in [`prov_check`], and
//! exits non-zero when any unjustified finding remains. `--list` prints the
//! rule catalog instead.

use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let first = args.next();
    if first.as_deref() == Some("--list") {
        for rule in prov_check::RULES {
            println!("{:16} {}", rule.id, rule.description);
        }
        return ExitCode::SUCCESS;
    }
    let root = first.unwrap_or_else(|| ".".to_string());
    let findings = match prov_check::check_workspace(Path::new(&root)) {
        Ok(findings) => findings,
        Err(e) => {
            eprintln!("prov-check: cannot walk {root}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if findings.is_empty() {
        println!("prov-check: clean");
        return ExitCode::SUCCESS;
    }
    for finding in &findings {
        println!("{finding}");
    }
    println!(
        "prov-check: {} finding(s); justify genuine exceptions with \
         `// lint-ok(<rule>): <reason>` on the same or preceding line",
        findings.len()
    );
    ExitCode::FAILURE
}
