//! End-to-end reproduction of the paper's running example (Fig. 2(d)/(e)):
//! the three queries of Examples 3 and 4 must produce the interpretations the
//! paper describes.

use prov_core::fig2;
use prov_model::{EdgeKind, VertexKind};
use prov_segment::{Boundary, Categories, PgSegOptions, PgSegQuery};
use prov_store::ProvIndex;
use prov_summary::{PgSumQuery, SegmentRef};

fn q_boundary(expand_from: prov_model::VertexId) -> Boundary {
    Boundary::none()
        .without_edge_kinds(&[EdgeKind::WasAttributedTo, EdgeKind::WasDerivedFrom])
        .expand(vec![expand_from], 2)
}

#[test]
fn query1_explains_alices_v2_round() {
    let ex = fig2::build();
    let index = ProvIndex::build(&ex.graph);
    let q1 = PgSegQuery::between(vec![ex.v("dataset-v1")], vec![ex.v("weight-v2")])
        .with_boundary(q_boundary(ex.v("weight-v2")));
    let seg = prov_segment::pgseg(&ex.graph, &index, q1, &PgSegOptions::default()).unwrap();

    // Direct path: weight-v2 -> train-v2 -> dataset-v1.
    assert!(seg.category(ex.v("train-v2")).unwrap().contains(Categories::DIRECT));
    // Similar path induces the other inputs Alice used (model-v2, solver-v1).
    assert!(seg.category(ex.v("model-v2")).unwrap().contains(Categories::SIMILAR));
    assert!(seg.category(ex.v("solver-v1")).unwrap().contains(Categories::SIMILAR));
    // Sibling output of the same train run.
    assert!(seg.category(ex.v("log-v2")).unwrap().contains(Categories::SIBLING));
    // The expansion (2 activities from weight-v2) reaches Alice's update and
    // the original model — "Bob knew Alice updated the model definitions".
    assert!(seg.contains(ex.v("update-v2")));
    assert!(seg.contains(ex.v("model-v1")));
    // Agents come along via VC4.
    assert!(seg.category(ex.v("Alice")).unwrap().contains(Categories::AGENT));
    // Attribution and derivation edges were excluded by the boundary.
    for &e in &seg.edges {
        let kind = ex.graph.edge(e).kind;
        assert!(kind != EdgeKind::WasAttributedTo && kind != EdgeKind::WasDerivedFrom);
    }
}

#[test]
fn query2_shows_bob_did_not_use_alices_model() {
    let ex = fig2::build();
    let index = ProvIndex::build(&ex.graph);
    let q2 = PgSegQuery::between(vec![ex.v("dataset-v1")], vec![ex.v("log-v3")])
        .with_boundary(q_boundary(ex.v("log-v3")));
    let seg = prov_segment::pgseg(&ex.graph, &index, q2, &PgSegOptions::default()).unwrap();

    // Bob's round appears: solver update + retrain.
    assert!(seg.contains(ex.v("update-v3")));
    assert!(seg.contains(ex.v("solver-v3")));
    assert!(seg.contains(ex.v("train-v3")));
    assert!(seg.contains(ex.v("model-v1")), "Bob reused the ORIGINAL model");
    // "The result showed Bob … did not use her new model committed in v2."
    assert!(!seg.contains(ex.v("model-v2")));
    assert!(!seg.contains(ex.v("weight-v2")));
    // And not Alice's v2 training either.
    assert!(!seg.contains(ex.v("train-v2")));
}

#[test]
fn query3_summary_merges_trains_and_keeps_update_alternatives() {
    let ex = fig2::build();
    let index = ProvIndex::build(&ex.graph);
    let opts = PgSegOptions::default();
    let seg1 = prov_segment::pgseg(
        &ex.graph,
        &index,
        PgSegQuery::between(vec![ex.v("dataset-v1")], vec![ex.v("weight-v2")])
            .with_boundary(q_boundary(ex.v("weight-v2"))),
        &opts,
    )
    .unwrap();
    let seg2 = prov_segment::pgseg(
        &ex.graph,
        &index,
        PgSegQuery::between(vec![ex.v("dataset-v1")], vec![ex.v("log-v3")])
            .with_boundary(q_boundary(ex.v("log-v3"))),
        &opts,
    )
    .unwrap();

    let psg = prov_summary::pgsum(
        &ex.graph,
        &[SegmentRef::from(&seg1), SegmentRef::from(&seg2)],
        &PgSumQuery::fig2e(),
    );

    // The summary is smaller than the union of the segments.
    assert!(psg.vertex_count() < psg.input_vertex_count);
    // Edge frequencies are halves or wholes (|S| = 2).
    for e in &psg.edges {
        let scaled = e.frequency * 2.0;
        assert!((scaled - scaled.round()).abs() < 1e-9);
        assert!(e.frequency >= 0.5 - 1e-9 && e.frequency <= 1.0 + 1e-9);
    }
    // Agents were aggregated into a single abstract team member per type.
    let agent_groups = psg.vertices.iter().filter(|v| v.kind == VertexKind::Agent).count();
    assert!(agent_groups <= 2, "Alice and Bob collapse (got {agent_groups})");
    // Some edge appears in both segments (the dataset-usage backbone).
    assert!(psg.edges.iter().any(|e| e.frequency >= 1.0 - 1e-9));
    // And some edge is segment-specific (the alternative update routines).
    assert!(psg.edges.iter().any(|e| e.frequency <= 0.5 + 1e-9));
}

#[test]
fn query1_and_query2_via_provdb_facade() {
    let ex = fig2::build();
    let db = prov_core::ProvDb::from_graph(ex.graph.clone());
    let seg = db
        .segment(
            PgSegQuery::between(vec![ex.v("dataset-v1")], vec![ex.v("weight-v2")])
                .with_boundary(q_boundary(ex.v("weight-v2"))),
            &PgSegOptions::default(),
        )
        .unwrap();
    assert!(seg.contains(ex.v("train-v2")));
    // Lineage sanity through the facade.
    let ancestors = db.ancestors_of(ex.v("weight-v3"));
    assert!(ancestors.contains(&ex.v("solver-v3")));
    assert!(ancestors.contains(&ex.v("dataset-v1")));
    assert!(!ancestors.contains(&ex.v("model-v2")));
}
