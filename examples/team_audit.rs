//! Team-behaviour audit: summarize many similar pipeline segments.
//!
//! An auditor wants the prospective picture of a project stage: generate an
//! `Sd` segment set (a Markov chain over activity types, Dirichlet-`α`
//! transition rows), summarize it with PgSum under command-level aggregation,
//! and compare against the pSum baseline — reproducing the Fig. 5(e) setup at
//! one parameter point.
//!
//! ```sh
//! cargo run --release --example team_audit
//! ```

use prov_model::VertexKind;
use prov_summary::{PgSumQuery, PropertyAggregation, SegmentRef};
use prov_workload::{generate_sd, SdParams};

fn main() {
    let params = SdParams { alpha: 0.1, k: 5, n: 20, num_segments: 10, ..SdParams::default() };
    let out = generate_sd(&params);
    println!(
        "generated {} segments over {} activity types ({} vertices total)",
        out.segments.len(),
        params.k,
        out.graph.vertex_count()
    );
    println!("transition matrix (rows ~ Dirichlet(α = {})):", params.alpha);
    for (i, row) in out.transition.iter().enumerate() {
        let cells: Vec<String> = row.iter().map(|p| format!("{p:.2}")).collect();
        println!("  op{i}: [{}]", cells.join(", "));
    }

    let segments: Vec<SegmentRef> =
        out.segments.iter().map(|s| SegmentRef::new(s.vertices.clone(), s.edges.clone())).collect();

    let query = PgSumQuery::new(
        PropertyAggregation::ignore_all().with_keys(VertexKind::Activity, &["command"]),
        1,
    );
    let psg = prov_summary::pgsum(&out.graph, &segments, &query);
    let baseline = prov_summary::psum_baseline(&out.graph, &segments, &query);

    println!("\nPgSum: |M| = {:<4} cr = {:.3}", psg.vertex_count(), psg.compaction_ratio());
    println!("pSum : |M| = {:<4} cr = {:.3}", baseline.block_count, baseline.compaction_ratio);
    assert!(psg.compaction_ratio() <= baseline.compaction_ratio + 1e-12);

    // The most common pipeline steps: activity-to-activity flows through
    // entities, ranked by frequency.
    println!("\ntypical steps (highest-frequency summary edges):");
    let mut edges = psg.edges.clone();
    edges.sort_by(|a, b| b.frequency.total_cmp(&a.frequency));
    for e in edges.iter().take(10) {
        println!(
            "  {} -{}-> {}   {:>3.0}% of segments",
            psg.vertices[e.src as usize].label,
            e.kind.letter(),
            psg.vertices[e.dst as usize].label,
            e.frequency * 100.0
        );
    }

    // Rare (outlier) behaviour: edges appearing in exactly one segment.
    let rare = psg
        .edges
        .iter()
        .filter(|e| (e.frequency * out.segments.len() as f64).round() as usize == 1)
        .count();
    println!("\n{rare} summary edges appear in exactly one segment (outlier steps)");
}
