//! The columnar on-disk snapshot: a checksummed, whole-graph image written
//! by compaction so recovery replays only the WAL suffix.
//!
//! ## Format
//!
//! ```text
//! [8-byte magic "PROVSNAP"][u32 body_len][u32 crc32(body)][body]
//! ```
//!
//! The body serializes the store column by column, mirroring the in-memory
//! layout (the store is already columnar — DESIGN.md §1):
//!
//! 1. `u64 seq` — the commit sequence number of the last batch folded in
//!    (the WAL of the same generation continues at `seq + 1`);
//! 2. the key interner, in id order (so replay re-interns identically);
//! 3. the vertex columns: kinds, names (births are implicit — the clock
//!    advances only in `add_vertex`, so vertex `i` was born at tick `i`);
//! 4. the vertex property column as `(vertex, key id, value)` triples;
//! 5. the edge columns: kind, src, dst, then `(edge, key id, value)` props;
//! 6. the declared secondary indexes as `(kind, key id)` pairs.
//!
//! Decoding replays the columns through the ordinary [`ProvGraph`] mutators,
//! which rebuilds every derived structure (adjacency, kind/name indexes,
//! backfilled property indexes) and reproduces the graph exactly — the same
//! guarantee WAL replay gives, shared by construction.
//!
//! A snapshot is written atomically (temp file + rename), so a damaged
//! snapshot is never a torn write — decode failures are corruption
//! ([`crate::StoreError::CorruptLog`] upstream), not something to truncate.

use super::codec::{crc32, put_prop_value, put_str, put_u32, put_u64, put_u8, Reader};
use crate::graph::ProvGraph;
use prov_model::{EdgeKind, VertexKind};

const MAGIC: &[u8; 8] = b"PROVSNAP";

/// Encode `graph` (whose durable state ends at commit `seq`) as a snapshot
/// image.
pub fn encode(graph: &ProvGraph, seq: u64) -> Vec<u8> {
    let mut body = Vec::new();
    put_u64(&mut body, seq);
    // Interner, in id order.
    // lint-ok(narrowing-cast): key cardinality is far below u32::MAX.
    put_u32(&mut body, graph.interner().len() as u32);
    for (_, name) in graph.interner().iter() {
        put_str(&mut body, name);
    }
    // Vertex columns.
    // lint-ok(narrowing-cast): the store bounds vertex count below u32::MAX.
    put_u32(&mut body, graph.vertex_count() as u32);
    for v in graph.vertex_ids() {
        let rec = graph.vertex(v);
        // lint-ok(narrowing-cast): VertexKind::as_index is 0..3.
        put_u8(&mut body, rec.kind.as_index() as u8);
        match &rec.name {
            Some(n) => {
                put_u8(&mut body, 1);
                put_str(&mut body, n);
            }
            None => put_u8(&mut body, 0),
        }
    }
    // Vertex property column.
    let vprops: Vec<_> = graph
        .vertex_ids()
        .flat_map(|v| graph.vertex(v).props.iter().map(move |(k, val)| (v, k, val.clone())))
        .collect();
    // lint-ok(narrowing-cast): bounded by vertices × small prop counts.
    put_u32(&mut body, vprops.len() as u32);
    for (v, k, val) in &vprops {
        put_u32(&mut body, v.raw());
        put_u32(&mut body, k.raw());
        put_prop_value(&mut body, val);
    }
    // Edge columns.
    // lint-ok(narrowing-cast): the store bounds edge count below u32::MAX.
    put_u32(&mut body, graph.edge_count() as u32);
    for e in graph.edge_ids() {
        let rec = graph.edge(e);
        // lint-ok(narrowing-cast): EdgeKind::as_index is 0..5.
        put_u8(&mut body, rec.kind.as_index() as u8);
        put_u32(&mut body, rec.src.raw());
        put_u32(&mut body, rec.dst.raw());
    }
    let eprops: Vec<_> = graph
        .edge_ids()
        .flat_map(|e| graph.edge(e).props.iter().map(move |(k, val)| (e, k, val.clone())))
        .collect();
    // lint-ok(narrowing-cast): bounded by edges × small prop counts.
    put_u32(&mut body, eprops.len() as u32);
    for (e, k, val) in &eprops {
        put_u32(&mut body, e.raw());
        put_u32(&mut body, k.raw());
        put_prop_value(&mut body, val);
    }
    // Declared secondary indexes.
    let declared = graph.declared_vprop_indexes();
    // lint-ok(narrowing-cast): kinds × keys is tiny.
    put_u32(&mut body, declared.len() as u32);
    for (kind, key) in &declared {
        // lint-ok(narrowing-cast): VertexKind::as_index is 0..3.
        put_u8(&mut body, kind.as_index() as u8);
        put_u32(&mut body, key.raw());
    }

    let mut out = Vec::with_capacity(MAGIC.len() + 8 + body.len());
    out.extend_from_slice(MAGIC);
    // lint-ok(narrowing-cast): a 4 GiB snapshot body cannot fit the dense id space.
    put_u32(&mut out, body.len() as u32);
    put_u32(&mut out, crc32(&body));
    out.extend_from_slice(&body);
    out
}

/// Decode a snapshot image back into a graph (journaling off) and the commit
/// sequence number it covers. Every failure names the first malformed field.
pub fn decode(bytes: &[u8]) -> Result<(ProvGraph, u64), String> {
    if bytes.len() < MAGIC.len() + 8 {
        return Err(format!("snapshot too short ({} bytes)", bytes.len()));
    }
    if &bytes[..MAGIC.len()] != MAGIC {
        return Err("bad snapshot magic".to_string());
    }
    let mut header = Reader::new(&bytes[MAGIC.len()..MAGIC.len() + 8]);
    let body_len = header.u32("snapshot body length")? as usize;
    let crc = header.u32("snapshot crc")?;
    let body = &bytes[MAGIC.len() + 8..];
    if body.len() != body_len {
        return Err(format!("snapshot body is {} bytes, header says {body_len}", body.len()));
    }
    if crc32(body) != crc {
        return Err("snapshot crc mismatch".to_string());
    }

    let mut r = Reader::new(body);
    let seq = r.u64("snapshot seq")?;
    let mut g = ProvGraph::new();
    // Interner first, in id order, so key ids referenced below resolve and
    // replayed interning matches the encoded graph exactly.
    let key_count = r.u32("key count")?;
    let mut key_names = Vec::with_capacity(key_count as usize);
    for i in 0..key_count {
        let name = r.str("key name")?;
        let id = g.key(&name);
        if id.raw() != i {
            return Err(format!("key {name:?} interned as {id:?}, expected id {i}"));
        }
        key_names.push(name);
    }
    let key_name = |id: u32, what: &str| -> Result<&std::sync::Arc<str>, String> {
        key_names.get(id as usize).ok_or_else(|| format!("{what} names unknown key {id}"))
    };
    // Vertices.
    let n = r.u32("vertex count")?;
    for i in 0..n {
        let kind_raw = r.u8("vertex kind")?;
        let kind = VertexKind::from_index(kind_raw as usize)
            .ok_or_else(|| format!("vertex {i}: unknown kind {kind_raw}"))?;
        let name = match r.u8("vertex name flag")? {
            0 => None,
            1 => Some(r.str("vertex name")?),
            f => return Err(format!("vertex {i}: bad name flag {f}")),
        };
        g.add_vertex(kind, name.as_deref()).map_err(|e| format!("vertex {i}: {e}"))?;
    }
    // Vertex props.
    let vprop_count = r.u32("vprop count")?;
    for i in 0..vprop_count {
        let v = r.u32("vprop vertex")?;
        if v >= n {
            return Err(format!("vprop {i} names unknown vertex {v}"));
        }
        let key = key_name(r.u32("vprop key")?, "vprop")?.clone();
        let value = r.prop_value("vprop value")?;
        g.set_vprop(prov_model::VertexId::new(v), &key, value);
    }
    // Edges.
    let m = r.u32("edge count")?;
    for i in 0..m {
        let kind_raw = r.u8("edge kind")?;
        let kind = EdgeKind::from_index(kind_raw as usize)
            .ok_or_else(|| format!("edge {i}: unknown kind {kind_raw}"))?;
        let src = prov_model::VertexId::new(r.u32("edge src")?);
        let dst = prov_model::VertexId::new(r.u32("edge dst")?);
        g.add_edge(kind, src, dst).map_err(|e| format!("edge {i}: {e}"))?;
    }
    // Edge props.
    let eprop_count = r.u32("eprop count")?;
    for i in 0..eprop_count {
        let e = r.u32("eprop edge")?;
        if e >= m {
            return Err(format!("eprop {i} names unknown edge {e}"));
        }
        let key = key_name(r.u32("eprop key")?, "eprop")?.clone();
        let value = r.prop_value("eprop value")?;
        g.set_eprop(prov_model::EdgeId::new(e), &key, value);
    }
    // Secondary indexes (declaration backfills from the columns just loaded).
    let idx_count = r.u32("index count")?;
    for i in 0..idx_count {
        let kind_raw = r.u8("index kind")?;
        let kind = VertexKind::from_index(kind_raw as usize)
            .ok_or_else(|| format!("index {i}: unknown kind {kind_raw}"))?;
        let key = key_name(r.u32("index key")?, "index")?.clone();
        g.create_vprop_index(kind, &key);
    }
    if !r.is_exhausted() {
        return Err(format!("{} trailing bytes after snapshot body", r.remaining()));
    }
    Ok((g, seq))
}

#[cfg(test)]
mod tests {
    use super::*;
    use prov_model::{EdgeId, PropValue};

    fn rich_graph() -> ProvGraph {
        let mut g = ProvGraph::new();
        let data = g.add_entity("data-v1");
        let alice = g.add_agent("alice");
        let train = g.add_activity("train");
        let weights = g.add_vertex(VertexKind::Entity, None).unwrap(); // unnamed
        g.add_edge(EdgeKind::Used, train, data).unwrap();
        g.add_edge(EdgeKind::WasGeneratedBy, weights, train).unwrap();
        g.add_edge(EdgeKind::WasAssociatedWith, train, alice).unwrap();
        g.set_vprop(data, "filename", "data");
        g.set_vprop(data, "version", 1i64);
        g.set_vprop(weights, "acc", 0.75);
        g.set_vprop(weights, "keep", true);
        g.set_eprop(EdgeId::new(0), "role", "input");
        g.create_vprop_index(VertexKind::Entity, "filename");
        g.key("interned-but-unused");
        g
    }

    #[test]
    fn snapshot_round_trips_exactly() {
        let g = rich_graph();
        let bytes = encode(&g, 42);
        let (decoded, seq) = decode(&bytes).unwrap();
        assert_eq!(seq, 42);
        assert_eq!(decoded, g);
        decoded.validate().unwrap();
        // Exactness includes interner ids and declared indexes.
        assert_eq!(decoded.key_id("interned-but-unused"), g.key_id("interned-but-unused"));
        assert_eq!(decoded.declared_vprop_indexes(), g.declared_vprop_indexes());
        // The backfilled index answers like the original.
        assert_eq!(
            decoded.find_by_prop(VertexKind::Entity, "filename", &PropValue::from("data")),
            g.find_by_prop(VertexKind::Entity, "filename", &PropValue::from("data")),
        );
    }

    #[test]
    fn empty_graph_round_trips() {
        let g = ProvGraph::new();
        let bytes = encode(&g, 0);
        let (decoded, seq) = decode(&bytes).unwrap();
        assert_eq!(seq, 0);
        assert_eq!(decoded, g);
    }

    #[test]
    fn every_corrupted_byte_is_detected() {
        let g = rich_graph();
        let bytes = encode(&g, 7);
        // Flip one bit in every byte: magic, header, and body corruption must
        // all surface as decode errors, never as a silently different graph.
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            match decode(&bad) {
                Err(_) => {}
                Ok((decoded, seq)) => {
                    panic!(
                        "flipping byte {i} went undetected (seq {seq}, {} vertices)",
                        decoded.vertex_count()
                    );
                }
            }
        }
        // Truncations too.
        for cut in 0..bytes.len() {
            assert!(decode(&bytes[..cut]).is_err(), "truncation at {cut} undetected");
        }
    }

    #[test]
    fn dangling_references_are_named() {
        let mut g = ProvGraph::new();
        g.add_entity("e");
        let mut bytes = encode(&g, 1);
        // Corrupt the body in a way that keeps the CRC honest: rebuild a
        // snapshot whose vprop column names vertex 9. Easiest path — encode a
        // graph, then hand-patch is fragile; instead decode-fail via a
        // hand-built body is covered by the bit-flip sweep above. Here just
        // check the magic/short-input paths.
        bytes.truncate(4);
        assert!(decode(&bytes).unwrap_err().contains("too short"));
        assert!(decode(b"NOTASNAPxxxxxxxxyyyy").unwrap_err().contains("magic"));
    }
}
