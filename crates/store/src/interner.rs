//! String interner for schema-later property keys.
//!
//! Property keys (`P` in Definition 1) repeat heavily across vertices
//! (`filename`, `command`, `acc`, ...). The store interns them once to
//! [`PropKeyId`] so property maps compare/hash by `u32`.

use crate::hash::FxHashMap;
use prov_model::PropKeyId;
use std::sync::Arc;

/// Bidirectional map `&str ⇄ PropKeyId`.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct KeyInterner {
    by_name: FxHashMap<Arc<str>, PropKeyId>,
    names: Vec<Arc<str>>,
}

impl KeyInterner {
    /// Empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `name`, returning its stable id.
    pub fn intern(&mut self, name: &str) -> PropKeyId {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        // lint-ok(narrowing-cast): property-key cardinality is tiny; ids stay far below u32::MAX.
        let id = PropKeyId::new(self.names.len() as u32);
        let arc: Arc<str> = Arc::from(name);
        self.names.push(arc.clone());
        self.by_name.insert(arc, id);
        id
    }

    /// Look up an already-interned key without creating it.
    pub fn get(&self, name: &str) -> Option<PropKeyId> {
        self.by_name.get(name).copied()
    }

    /// Resolve an id back to its name.
    pub fn resolve(&self, id: PropKeyId) -> Option<&str> {
        self.names.get(id.index()).map(|s| s.as_ref())
    }

    /// Number of distinct interned keys.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterate `(id, name)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (PropKeyId, &str)> {
        // lint-ok(narrowing-cast): indexes of ids minted by `intern`, all below u32::MAX.
        self.names.iter().enumerate().map(|(i, s)| (PropKeyId::new(i as u32), s.as_ref()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut it = KeyInterner::new();
        let a = it.intern("command");
        let b = it.intern("command");
        let c = it.intern("filename");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(it.len(), 2);
    }

    #[test]
    fn resolve_round_trips() {
        let mut it = KeyInterner::new();
        let id = it.intern("acc");
        assert_eq!(it.resolve(id), Some("acc"));
        assert_eq!(it.get("acc"), Some(id));
        assert_eq!(it.get("missing"), None);
        assert_eq!(it.resolve(PropKeyId::new(99)), None);
    }

    #[test]
    fn iter_in_id_order() {
        let mut it = KeyInterner::new();
        it.intern("a");
        it.intern("b");
        let pairs: Vec<(u32, &str)> = it.iter().map(|(k, n)| (k.raw(), n)).collect();
        assert_eq!(pairs, vec![(0, "a"), (1, "b")]);
    }
}
