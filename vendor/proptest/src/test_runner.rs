//! Test configuration and the deterministic RNG driving case generation.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Runner configuration (`ProptestConfig` in the prelude).
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of cases each property runs.
    pub cases: u32,
}

impl Config {
    /// Run each property `cases` times.
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 64 }
    }
}

/// Deterministic RNG: seeded from the test's module path + name (FNV-1a), so
/// every run and every CI machine explores the same cases.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// Seed from a stable name.
    pub fn deterministic(name: &str) -> Self {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng(StdRng::seed_from_u64(hash))
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is meaningless");
        // Debiased multiply-free rejection.
        let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
        loop {
            let raw = self.next_u64();
            if raw <= zone {
                return raw % bound;
            }
        }
    }
}
