//! Offline stand-in for `criterion`.
//!
//! Implements the API subset the Fig. 5 benches use — `Criterion`,
//! `benchmark_group` with `sample_size`/`measurement_time`,
//! `bench_with_input`/`bench_function`, `BenchmarkId`, `Bencher::iter`,
//! `black_box`, and the `criterion_group!`/`criterion_main!` macros — as a
//! plain wall-clock harness printing mean/min/max per benchmark. No
//! statistics, no HTML reports, no `target/criterion` output.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier (re-exported like `criterion::black_box`).
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Benchmark identifier: `function_id/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Identifier with a function name and a parameter rendering.
    pub fn new(function_id: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_id.into(), parameter) }
    }

    /// Identifier from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

/// Timing loop handle passed to the measurement closure.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    measurement_time: Duration,
}

impl Bencher {
    /// Run the routine repeatedly, recording one wall-clock sample per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // One warmup call outside the measurement.
        black_box(routine());
        let budget_start = Instant::now();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
            if budget_start.elapsed() > self.measurement_time {
                break;
            }
        }
    }
}

/// The top-level benchmark driver.
pub struct Criterion {
    _private: (),
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { _private: () }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            measurement_time: Duration::from_secs(3),
            _criterion: self,
        }
    }

    /// Benchmark a standalone function.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let mut group = self.benchmark_group("");
        group.run_one(id.to_string(), f);
        group.finish();
        self
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of measured iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Wall-clock budget per benchmark.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Benchmark a routine parameterized by an input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.run_one(id.id.clone(), |b| f(b, input));
        self
    }

    /// Benchmark an input-free routine.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        f: F,
    ) -> &mut Self {
        self.run_one(id.into(), f);
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, id: String, mut f: F) {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
        };
        f(&mut bencher);
        let label =
            if self.name.is_empty() { id } else { format!("{}/{}", self.name, id) };
        if bencher.samples.is_empty() {
            println!("{label:<60} (no samples)");
            return;
        }
        let total: Duration = bencher.samples.iter().sum();
        let mean = total / bencher.samples.len() as u32;
        let min = bencher.samples.iter().min().expect("non-empty");
        let max = bencher.samples.iter().max().expect("non-empty");
        println!(
            "{label:<60} mean {mean:>12?}   min {min:>12?}   max {max:>12?}   ({} samples)",
            bencher.samples.len()
        );
    }

    /// End the group (prints nothing extra; parity with the real API).
    pub fn finish(self) {}
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
