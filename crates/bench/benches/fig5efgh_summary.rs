//! Fig. 5(e)–(h) kernel benchmark: PgSum vs pSum runtime on `Sd` segment
//! sets across the paper's four sweeps (α, k, n, |S|), one representative
//! point per sweep extreme. Compaction-ratio series (the figures' y-axis)
//! are produced by the `figure` binary; here Criterion tracks the cost of
//! the summarizers themselves.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use prov_model::VertexKind;
use prov_summary::{PgSumQuery, PropertyAggregation, SegmentRef};
use prov_workload::{generate_sd, SdParams};
use std::time::Duration;

fn query() -> PgSumQuery {
    PgSumQuery::new(
        PropertyAggregation::ignore_all().with_keys(VertexKind::Activity, &["command"]),
        0,
    )
}

fn prepared(params: &SdParams) -> (prov_store::ProvGraph, Vec<SegmentRef>) {
    let out = generate_sd(params);
    let segments =
        out.segments.iter().map(|s| SegmentRef::new(s.vertices.clone(), s.edges.clone())).collect();
    (out.graph, segments)
}

fn bench_summary(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5efgh_summary");
    group.sample_size(10).measurement_time(Duration::from_secs(3));

    let cases: Vec<(&str, SdParams)> = vec![
        ("e_alpha0.025", SdParams { alpha: 0.025, ..SdParams::default() }),
        ("e_alpha1.0", SdParams { alpha: 1.0, ..SdParams::default() }),
        ("f_k3", SdParams { k: 3, ..SdParams::default() }),
        ("f_k25", SdParams { k: 25, ..SdParams::default() }),
        ("g_n5", SdParams { n: 5, ..SdParams::default() }),
        ("g_n50", SdParams { n: 50, ..SdParams::default() }),
        ("h_s5", SdParams { alpha: 0.25, num_segments: 5, ..SdParams::default() }),
        ("h_s40", SdParams { alpha: 0.25, num_segments: 40, ..SdParams::default() }),
    ];

    for (label, params) in cases {
        let (graph, segments) = prepared(&params);
        let q = query();
        group.bench_with_input(BenchmarkId::new("pgsum", label), &label, |b, _| {
            b.iter(|| prov_summary::pgsum(&graph, &segments, &q))
        });
        group.bench_with_input(BenchmarkId::new("psum", label), &label, |b, _| {
            b.iter(|| prov_summary::psum_baseline(&graph, &segments, &q))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_summary);
criterion_main!(benches);
