//! Offline shim of the `rayon-core` API subset this workspace uses.
//!
//! The build environment has no registry access, so this crate implements —
//! from scratch, against the std synchronization primitives only — the small
//! executor surface the `prov-*` kernels need:
//!
//! - [`ThreadPool`]: a fixed pool of workers with per-worker work-stealing
//!   deques ([`StealDeque`]) and a shared injector. The [`global_pool`] is
//!   sized by the `PROV_THREADS` environment variable (falling back to
//!   `available_parallelism`) and lives for the process.
//! - [`scope`] / [`Scope::spawn`]: structured tasks that may borrow stack
//!   data; the scope call blocks (helping run pool jobs) until all spawned
//!   tasks finish, and re-throws the first captured panic.
//! - [`join`]: two-way fork/join built on `scope`.
//! - [`par_for`] / [`chunk_ranges`]: chunked data-parallel loops.
//!
//! There is deliberately no registry, no `spawn` without a scope, and no
//! dynamic pool resizing — the kernels size their chunk counts explicitly so
//! an N-way computation behaves identically on any pool.
//!
//! Every synchronization primitive is imported through the [`mod@sync`]
//! facade, which swaps to the `loom-lite` model-checking doubles under
//! `--cfg prov_loom`; `tests/loom.rs` proves the executor's load-bearing
//! properties over every thread interleaving. See DESIGN.md §8.

mod deque;
mod pool;
mod scope;
mod sync;

pub use deque::StealDeque;
pub use pool::{configured_num_threads, current_num_threads, global_pool, ThreadPool};
pub use scope::{chunk_ranges, join, par_for, scope, Scope};

// The std-mode unit tests exercise real OS scheduling; under the loom cfg
// the whole module is compiled out (tests/loom.rs replaces it).
#[cfg(all(test, not(prov_loom)))]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_runs_all_tasks() {
        let pool = ThreadPool::new(4);
        let hits = AtomicUsize::new(0);
        pool.scope(|s| {
            for _ in 0..64 {
                s.spawn(|| {
                    hits.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(hits.load(Ordering::SeqCst), 64);
    }

    #[test]
    fn nested_scopes_do_not_deadlock() {
        let pool = ThreadPool::new(1);
        let hits = AtomicUsize::new(0);
        pool.scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    pool.scope(|inner| {
                        for _ in 0..4 {
                            inner.spawn(|| {
                                hits.fetch_add(1, Ordering::SeqCst);
                            });
                        }
                    });
                });
            }
        });
        assert_eq!(hits.load(Ordering::SeqCst), 16);
    }

    #[test]
    fn join_returns_both() {
        let pool = ThreadPool::new(2);
        let (a, b) = pool.join(|| 2 + 2, || "ok");
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }

    #[test]
    fn par_for_covers_every_index() {
        let pool = ThreadPool::new(4);
        let n = 1000;
        let marks: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        pool.par_for(n, 8, |_, range| {
            for i in range {
                marks[i].fetch_add(1, Ordering::SeqCst);
            }
        });
        assert!(marks.iter().all(|m| m.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn task_panic_propagates() {
        let pool = ThreadPool::new(2);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.scope(|s| {
                s.spawn(|| panic!("boom"));
            });
        }));
        assert!(result.is_err());
        // The pool must stay usable after a task panic.
        let (a, b) = pool.join(|| 1, || 2);
        assert_eq!((a, b), (1, 2));
    }

    #[test]
    fn chunk_ranges_partition() {
        let ranges = chunk_ranges(10, 4);
        let flat: Vec<usize> = ranges.into_iter().flatten().collect();
        assert_eq!(flat, (0..10).collect::<Vec<_>>());
        assert!(chunk_ranges(0, 4).is_empty());
        assert_eq!(chunk_ranges(3, 8).len(), 3);
    }
}
