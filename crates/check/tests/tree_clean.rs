//! The repository's own source tree must satisfy every prov-check rule.
//!
//! This is the same walk `cargo run -p prov-check` performs, wired into
//! `cargo test` so the lint gate cannot drift from CI: a new `HashMap`,
//! `thread::spawn`, unexplained narrowing cast, or `Ordering::Relaxed` in a
//! checked scope fails this test unless it carries a
//! `// lint-ok(<rule>): <reason>` justification.

use std::path::Path;

#[test]
fn repository_tree_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let findings = prov_check::check_workspace(&root).expect("walk repository tree");
    assert!(
        findings.is_empty(),
        "prov-check found {} violation(s):\n{}",
        findings.len(),
        findings.iter().map(|f| f.to_string()).collect::<Vec<_>>().join("\n")
    );
}
