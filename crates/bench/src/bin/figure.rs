//! Regenerate the paper's evaluation figures as text tables.
//!
//! ```sh
//! cargo run -p prov-bench --release --bin figure -- all          # full scale
//! cargo run -p prov-bench --release --bin figure -- 5a --quick   # smoke run
//! ```

use prov_bench::{run_figure, Scale, ALL_FIGURES};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let scale = if quick { Scale::Quick } else { Scale::Full };
    let ids: Vec<String> = args.iter().filter(|a| !a.starts_with("--")).cloned().collect();
    let ids: Vec<String> = if ids.is_empty() || ids.iter().any(|i| i == "all") {
        ALL_FIGURES.iter().map(|s| s.to_string()).collect()
    } else {
        ids
    };
    for id in &ids {
        match run_figure(id, scale) {
            Some(fig) => {
                println!("{}", fig.render());
            }
            None => {
                eprintln!("unknown figure id {id:?}; valid: {ALL_FIGURES:?} or `all`");
                std::process::exit(2);
            }
        }
    }
}
