//! `ProvDb`: the lifecycle provenance management facade (Fig. 1).
//!
//! Bundles the ingestion surface (agents, versioned artifacts, activity
//! records — what the paper's non-intrusive CLI toolkit would feed in) with
//! the query facilities (PgSeg segmentation, PgSum summarization, lineage and
//! pattern matching) over the embedded property graph store.

use prov_model::{PropValue, VertexId, VertexKind};
use prov_segment::{PgSegOptions, PgSegQuery, PgSegSession, SegmentGraph};
use prov_store::hash::FxHashMap;
use prov_store::{ProvGraph, ProvIndex, SharedIndex, StoreResult};
use prov_summary::{pgsum, PgSumQuery, Psg, SegmentRef};
use std::sync::{Arc, RwLock};

/// Description of one artifact an activity generates.
#[derive(Debug, Clone)]
pub struct OutputSpec {
    /// Artifact name (versioned automatically: `name-vN`).
    pub artifact: String,
    /// Properties to attach to the new version.
    pub props: Vec<(String, PropValue)>,
}

impl OutputSpec {
    /// Output with no properties.
    pub fn named(artifact: &str) -> Self {
        OutputSpec { artifact: artifact.to_string(), props: Vec::new() }
    }

    /// Attach a property.
    pub fn with(mut self, key: &str, value: impl Into<PropValue>) -> Self {
        self.props.push((key.to_string(), value.into()));
        self
    }
}

/// One ingested activity (a CLI command execution).
#[derive(Debug, Clone)]
pub struct ActivityRecord {
    /// Command line / operation name.
    pub command: String,
    /// Responsible agent.
    pub agent: Option<VertexId>,
    /// Input entity versions the activity used.
    pub inputs: Vec<VertexId>,
    /// Artifacts generated.
    pub outputs: Vec<OutputSpec>,
    /// Extra activity properties.
    pub props: Vec<(String, PropValue)>,
}

/// Result of ingesting an activity.
#[derive(Debug, Clone)]
pub struct ActivityOutcome {
    /// The activity vertex.
    pub activity: VertexId,
    /// The generated entity versions, in `outputs` order.
    pub outputs: Vec<VertexId>,
}

/// Which way a lineage traversal walks the ancestry relations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LineageDirection {
    /// Transitive inputs: walk `used`/`wasGeneratedBy` upstream.
    Ancestors,
    /// Transitive products: walk the same relations downstream.
    Descendants,
}

/// The lifecycle provenance management system facade.
///
/// The graph lives behind an [`Arc`] and the frozen [`ProvIndex`] snapshot is
/// cached behind a lock: queries take `&self`, sessions opened through
/// [`ProvDb::segment_session`] are `'static` (they pin the snapshot they were
/// opened against), and mutations copy-on-write only when a live session
/// still holds the previous graph.
#[derive(Debug, Default)]
pub struct ProvDb {
    graph: Arc<ProvGraph>,
    index: RwLock<Option<SharedIndex>>,
    /// Next version number per artifact name.
    versions: FxHashMap<String, u32>,
}

impl ProvDb {
    /// Empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wrap an existing provenance graph.
    pub fn from_graph(graph: ProvGraph) -> Self {
        ProvDb { graph: Arc::new(graph), index: RwLock::new(None), versions: FxHashMap::default() }
    }

    /// The underlying store (read-only).
    pub fn graph(&self) -> &ProvGraph {
        &self.graph
    }

    /// A shareable handle to the underlying store (what interactive sessions
    /// pin; cheap — clones the handle, not the graph).
    pub fn graph_shared(&self) -> Arc<ProvGraph> {
        Arc::clone(&self.graph)
    }

    /// The frozen snapshot, rebuilt lazily after mutations and shared by all
    /// queries and sessions opened since the last mutation.
    pub fn snapshot(&self) -> SharedIndex {
        if let Some(idx) = self.index.read().expect("index lock").as_ref() {
            return Arc::clone(idx);
        }
        let built = ProvIndex::build_shared(&self.graph);
        let mut slot = self.index.write().expect("index lock");
        // Another caller may have raced us here; keep whichever landed first
        // (both were built from the same frozen graph).
        slot.get_or_insert(built).clone()
    }

    /// Mutable access to the store: invalidates the cached snapshot and
    /// copy-on-writes the graph if a live session still references it.
    fn graph_mut(&mut self) -> &mut ProvGraph {
        self.touch();
        Arc::make_mut(&mut self.graph)
    }

    fn touch(&mut self) {
        *self.index.write().expect("index lock") = None;
    }

    // ------------------------------------------------------------------
    // Ingestion
    // ------------------------------------------------------------------

    /// Register a team member. Errors (without invalidating the cached
    /// snapshot) when the vertex id space is exhausted.
    pub fn add_agent(&mut self, name: &str) -> StoreResult<VertexId> {
        self.graph.check_vertex_headroom(1)?;
        Ok(self.graph_mut().add_agent(name))
    }

    /// Register a new version of an artifact (external addition, e.g. a
    /// downloaded dataset); optionally attributed to an agent.
    ///
    /// Atomic: a rejected record leaves the store (and the version
    /// counters) untouched.
    pub fn add_artifact_version(
        &mut self,
        artifact: &str,
        attributed_to: Option<VertexId>,
    ) -> StoreResult<VertexId> {
        if let Some(agent) = attributed_to {
            self.expect_kind(agent, VertexKind::Agent, prov_model::EdgeKind::WasAttributedTo)?;
        }
        self.graph.check_vertex_headroom(1)?;
        self.graph.check_edge_headroom(attributed_to.is_some() as usize)?;
        let v = self.next_version(artifact);
        let graph = self.graph_mut();
        let e = graph.add_entity(&format!("{artifact}-v{v}"));
        graph.set_vprop(e, "filename", artifact);
        graph.set_vprop(e, "version", v as i64);
        if let Some(agent) = attributed_to {
            graph.add_edge(prov_model::EdgeKind::WasAttributedTo, e, agent)?;
        }
        Ok(e)
    }

    fn next_version(&mut self, artifact: &str) -> u32 {
        let slot = self.versions.entry(artifact.to_string()).or_insert(0);
        *slot += 1;
        *slot
    }

    /// Check that `v` exists and can be the target of a `kind` edge, without
    /// mutating anything — the up-front half of atomic ingestion.
    fn expect_kind(
        &self,
        v: VertexId,
        expected: VertexKind,
        kind: prov_model::EdgeKind,
    ) -> StoreResult<()> {
        let rec = self.graph.try_vertex(v)?;
        if rec.kind != expected {
            return Err(
                prov_model::EdgeTypeError { kind, src: kind.endpoints().0, dst: rec.kind }.into()
            );
        }
        Ok(())
    }

    /// Ingest one activity execution with its used/generated artifacts.
    ///
    /// Atomic: the record is validated in full before the first mutation, so
    /// a rejected request leaves the store, the version counters, and any
    /// pinned session snapshots untouched (no copy-on-write is paid either).
    pub fn record_activity(&mut self, record: ActivityRecord) -> StoreResult<ActivityOutcome> {
        if let Some(agent) = record.agent {
            self.expect_kind(agent, VertexKind::Agent, prov_model::EdgeKind::WasAssociatedWith)?;
        }
        for &input in &record.inputs {
            self.expect_kind(input, VertexKind::Entity, prov_model::EdgeKind::Used)?;
        }
        // Id-space headroom for the whole record, up front: one activity plus
        // the outputs; association + used + generated-by + (at most one)
        // derivation edge per output. A capacity failure must be a clean
        // typed error, not a mid-record panic or partial mutation.
        self.graph.check_vertex_headroom(1 + record.outputs.len())?;
        self.graph.check_edge_headroom(
            record.agent.is_some() as usize + record.inputs.len() + 2 * record.outputs.len(),
        )?;
        // Every fallible check is behind us: reserve version numbers (a
        // rejected request must not burn versions and leave a gap in the
        // `WasDerivedFrom` chain of a later valid request), then mutate.
        // The edges below are structurally valid by construction.
        let versions: Vec<u32> =
            record.outputs.iter().map(|spec| self.next_version(&spec.artifact)).collect();
        let graph = self.graph_mut();
        let a = graph.add_activity(&record.command);
        graph.set_vprop(a, "command", record.command.as_str());
        for (k, v) in &record.props {
            graph.set_vprop(a, k, v.clone());
        }
        if let Some(agent) = record.agent {
            graph.add_edge(prov_model::EdgeKind::WasAssociatedWith, a, agent)?;
        }
        for &input in &record.inputs {
            graph.add_edge(prov_model::EdgeKind::Used, a, input)?;
        }
        let mut outputs = Vec::with_capacity(record.outputs.len());
        for (spec, v) in record.outputs.iter().zip(versions) {
            let e = graph.add_entity(&format!("{}-v{}", spec.artifact, v));
            graph.set_vprop(e, "filename", spec.artifact.as_str());
            graph.set_vprop(e, "version", v as i64);
            for (k, val) in &spec.props {
                graph.set_vprop(e, k, val.clone());
            }
            graph.add_edge(prov_model::EdgeKind::WasGeneratedBy, e, a)?;
            // Version lineage: derive from the previous version when it is
            // still addressable. Best-effort by design — name shadowing (an
            // activity named like `model-v1`) can repoint the previous
            // version's name at a non-entity, and a fallible link here would
            // abort a half-applied record and break the atomicity contract.
            if v > 1 {
                if let Some(prev) = graph.vertex_by_name(&format!("{}-v{}", spec.artifact, v - 1)) {
                    if graph.vertex_kind(prev) == VertexKind::Entity {
                        graph.add_edge(prov_model::EdgeKind::WasDerivedFrom, e, prev)?;
                    }
                }
            }
            outputs.push(e);
        }
        Ok(ActivityOutcome { activity: a, outputs })
    }

    /// Latest version of an artifact, if any.
    pub fn latest_version(&self, artifact: &str) -> Option<VertexId> {
        let v = *self.versions.get(artifact)?;
        self.graph.vertex_by_name(&format!("{artifact}-v{v}"))
    }

    /// Resolve an entity by its versioned name (`model-v2`).
    pub fn entity(&self, versioned_name: &str) -> Option<VertexId> {
        self.graph.vertex_by_name(versioned_name)
    }

    // ------------------------------------------------------------------
    // Queries
    // ------------------------------------------------------------------

    /// Run a one-shot PgSeg query.
    pub fn segment(&self, query: PgSegQuery, opts: &PgSegOptions) -> StoreResult<SegmentGraph> {
        let index = self.snapshot();
        prov_segment::pgseg(&self.graph, &index, query, opts)
    }

    /// Open an interactive PgSeg session (induce once, adjust repeatedly).
    ///
    /// The session is `'static`: it pins the current graph/index snapshot, so
    /// it stays valid (and unchanged) even if the database is mutated later —
    /// store it in a registry, hand it across threads, adjust at leisure.
    pub fn segment_session(
        &self,
        query: PgSegQuery,
        opts: &PgSegOptions,
    ) -> StoreResult<PgSegSession> {
        let index = self.snapshot();
        PgSegSession::open(self.graph_shared(), index, query, opts)
    }

    /// Summarize a set of segments with PgSum.
    pub fn summarize(&self, segments: &[SegmentRef], query: &PgSumQuery) -> Psg {
        pgsum(&self.graph, segments, query)
    }

    /// Transitive closure over the ancestry relations (`U`/`G` edges) in the
    /// given direction — the shared engine behind [`ProvDb::ancestors_of`]
    /// and [`ProvDb::descendants_of`].
    pub fn lineage(&self, e: VertexId, direction: LineageDirection) -> Vec<VertexId> {
        let index = self.snapshot();
        let view = prov_segment::MaskedGraph::unmasked(&index);
        let mut seen = vec![false; index.vertex_count()];
        let mut stack = vec![e];
        seen[e.index()] = true;
        let mut out = Vec::new();
        while let Some(v) = stack.pop() {
            let mut visit = |w: VertexId| {
                if !seen[w.index()] {
                    seen[w.index()] = true;
                    out.push(w);
                    stack.push(w);
                }
            };
            match direction {
                LineageDirection::Ancestors => view.upstream(v).for_each(&mut visit),
                LineageDirection::Descendants => view.downstream(v).for_each(&mut visit),
            }
        }
        out.sort_unstable();
        out
    }

    /// All ancestors of an entity (transitive inputs through `U`/`G` edges).
    pub fn ancestors_of(&self, e: VertexId) -> Vec<VertexId> {
        self.lineage(e, LineageDirection::Ancestors)
    }

    /// Everything derived (transitively) from an entity.
    pub fn descendants_of(&self, e: VertexId) -> Vec<VertexId> {
        self.lineage(e, LineageDirection::Descendants)
    }

    /// Export to the PROV-JSON-style interchange format.
    pub fn export_json(&self) -> String {
        prov_store::json::to_json_string(&self.graph)
    }

    /// Import from the interchange format.
    pub fn import_json(data: &str) -> StoreResult<ProvDb> {
        let graph = prov_store::json::from_json_string(data)?;
        let mut versions = FxHashMap::default();
        for v in graph.vertices_of_kind(VertexKind::Entity) {
            if let (Some(name), Some(ver)) = (
                graph.vprop(*v, "filename").and_then(|p| p.as_str().map(str::to_string)),
                graph.vprop(*v, "version").and_then(|p| p.as_int()),
            ) {
                let slot = versions.entry(name).or_insert(0u32);
                *slot = (*slot).max(ver as u32);
            }
        }
        let mut db = ProvDb::from_graph(graph);
        db.versions = versions;
        Ok(db)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_project() -> (ProvDb, VertexId, VertexId) {
        let mut db = ProvDb::new();
        let alice = db.add_agent("alice").unwrap();
        let data = db.add_artifact_version("dataset", Some(alice)).unwrap();
        let out = db
            .record_activity(ActivityRecord {
                command: "train".into(),
                agent: Some(alice),
                inputs: vec![data],
                outputs: vec![
                    OutputSpec::named("weights").with("acc", 0.7),
                    OutputSpec::named("log"),
                ],
                props: vec![("opt".into(), "-gpu".into())],
            })
            .unwrap();
        (db, data, out.outputs[0])
    }

    #[test]
    fn ingestion_builds_prov_structure() {
        let (db, data, weights) = small_project();
        let g = db.graph();
        assert_eq!(g.kind_count(VertexKind::Entity), 3);
        assert_eq!(g.kind_count(VertexKind::Activity), 1);
        assert_eq!(g.vertex_name(weights), Some("weights-v1"));
        assert_eq!(g.vprop(weights, "acc").and_then(|v| v.as_float()), Some(0.7));
        assert_eq!(g.vertex_name(data), Some("dataset-v1"));
        g.validate_acyclic().unwrap();
    }

    #[test]
    fn versioning_links_derivations() {
        let (mut db, data, w1) = small_project();
        let out = db
            .record_activity(ActivityRecord {
                command: "train".into(),
                agent: None,
                inputs: vec![data],
                outputs: vec![OutputSpec::named("weights").with("acc", 0.75)],
                props: vec![],
            })
            .unwrap();
        let w2 = out.outputs[0];
        assert_eq!(db.graph().vertex_name(w2), Some("weights-v2"));
        assert_eq!(db.latest_version("weights"), Some(w2));
        // D edge w2 -> w1 exists.
        let derived: Vec<VertexId> =
            db.graph().out_neighbors(w2, prov_model::EdgeKind::WasDerivedFrom).collect();
        assert_eq!(derived, vec![w1]);
    }

    #[test]
    fn lineage_queries() {
        let (db, data, weights) = small_project();
        let anc = db.ancestors_of(weights);
        assert!(anc.contains(&data));
        let desc = db.descendants_of(data);
        assert!(desc.contains(&weights));
        assert!(!db.ancestors_of(data).contains(&weights));
    }

    #[test]
    fn segment_and_summarize_roundtrip() {
        let (db, data, weights) = small_project();
        let seg = db
            .segment(PgSegQuery::between(vec![data], vec![weights]), &PgSegOptions::default())
            .unwrap();
        assert!(seg.vertex_count() >= 3);
        let psg = db.summarize(&[SegmentRef::from(&seg)], &PgSumQuery::fig2e());
        assert!(psg.vertex_count() >= 3);
        assert!(psg.compaction_ratio() <= 1.0);
    }

    #[test]
    fn rejected_activity_is_atomic() {
        let (mut db, data, _) = small_project();
        let vertices_before = db.graph().vertex_count();
        let edges_before = db.graph().edge_count();
        // `data` is an entity, not an agent: the association edge is invalid
        // and the whole record is rejected...
        let err = db.record_activity(ActivityRecord {
            command: "train".into(),
            agent: Some(data),
            inputs: vec![],
            outputs: vec![OutputSpec::named("model")],
            props: vec![],
        });
        assert!(err.is_err());
        // ...leaving the store byte-for-byte untouched: no orphan activity
        // vertex, no stray edges...
        assert_eq!(db.graph().vertex_count(), vertices_before);
        assert_eq!(db.graph().edge_count(), edges_before);
        // ...and no reserved version: the next valid record starts the
        // artifact at v1 and keeps the derivation chain gap-free.
        let out = db
            .record_activity(ActivityRecord {
                command: "train".into(),
                agent: None,
                inputs: vec![data],
                outputs: vec![OutputSpec::named("model")],
                props: vec![],
            })
            .unwrap();
        assert_eq!(db.graph().vertex_name(out.outputs[0]), Some("model-v1"));
        assert_eq!(db.latest_version("model"), Some(out.outputs[0]));
    }

    #[test]
    fn name_shadowed_prev_version_cannot_break_atomicity() {
        let (mut db, data, _) = small_project();
        // An activity whose command collides with the weights-v1 name
        // repoints `by_name["weights-v1"]` at a non-entity.
        db.record_activity(ActivityRecord {
            command: "weights-v1".into(),
            agent: None,
            inputs: vec![data],
            outputs: vec![],
            props: vec![],
        })
        .unwrap();
        // The next weights version must still ingest cleanly: the derivation
        // link is skipped (its target is no longer an entity), not failed.
        let out = db
            .record_activity(ActivityRecord {
                command: "train".into(),
                agent: None,
                inputs: vec![data],
                outputs: vec![OutputSpec::named("weights")],
                props: vec![],
            })
            .unwrap();
        let w2 = out.outputs[0];
        assert_eq!(db.graph().vertex_name(w2), Some("weights-v2"));
        assert!(db
            .graph()
            .out_neighbors(w2, prov_model::EdgeKind::WasDerivedFrom)
            .next()
            .is_none());
        db.graph().validate_acyclic().unwrap();
    }

    #[test]
    fn sessions_pin_their_snapshot_across_mutations() {
        let (mut db, data, weights) = small_project();
        let mut session = db
            .segment_session(
                PgSegQuery::between(vec![data], vec![weights]),
                &PgSegOptions::default(),
            )
            .unwrap();
        let before = session.segment().vertex_count();
        // Mutating the database copy-on-writes the graph; the live session
        // keeps evaluating against the snapshot it pinned at open.
        db.record_activity(ActivityRecord {
            command: "train".into(),
            agent: None,
            inputs: vec![data],
            outputs: vec![OutputSpec::named("weights")],
            props: vec![],
        })
        .unwrap();
        assert!(db.graph().vertex_count() > session.graph().vertex_count());
        session.expand(&[data], 1);
        assert_eq!(session.segment().vertex_count(), before);
    }

    #[test]
    fn json_round_trip_preserves_versions() {
        let (db, ..) = small_project();
        let json = db.export_json();
        let mut db2 = ProvDb::import_json(&json).unwrap();
        assert_eq!(db2.graph().vertex_count(), db.graph().vertex_count());
        // Version counters restored: the next weights version is v2.
        let out = db2
            .record_activity(ActivityRecord {
                command: "train".into(),
                agent: None,
                inputs: vec![],
                outputs: vec![OutputSpec::named("weights")],
                props: vec![],
            })
            .unwrap();
        assert_eq!(db2.graph().vertex_name(out.outputs[0]), Some("weights-v2"));
    }

    #[test]
    fn entity_lookup_by_versioned_name() {
        let (db, data, _) = small_project();
        assert_eq!(db.entity("dataset-v1"), Some(data));
        assert_eq!(db.entity("dataset-v9"), None);
    }
}
