//! Tests for the property-constrained SimProv extension (Sec. III-A: "the
//! induced path should use the same commands as the path from Vsrc to Vdst").

use proptest::prelude::*;
use prov_model::{EdgeKind, VertexId};
use prov_segment::{
    similar_alg_bitset, similar_naive_constrained, AlgConfig, MaskedGraph, NaiveBudget,
    SimilarConstraint,
};
use prov_store::{ProvGraph, ProvIndex};

/// Two rounds feed `w`: round A (`d -> t1"train" -> m1`) and round B
/// (`d2 -> t2"finetune" -> m2`), merged by `t3` into `w`. With the
/// same-command constraint, round A's deep side can no longer mirror round
/// B's (t1 vs t2 disagree), so `d2` stops being similar to `d`.
fn mixed_commands() -> (ProvGraph, ProvIndex, [VertexId; 8]) {
    let mut g = ProvGraph::new();
    let d = g.add_entity("d");
    let d2 = g.add_entity("d2");
    let t1 = g.add_activity("t1");
    g.set_vprop(t1, "command", "train");
    let m1 = g.add_entity("m1");
    let t2 = g.add_activity("t2");
    g.set_vprop(t2, "command", "finetune");
    let m2 = g.add_entity("m2");
    let t3 = g.add_activity("t3");
    g.set_vprop(t3, "command", "train");
    let w = g.add_entity("w");
    g.add_edge(EdgeKind::Used, t1, d).unwrap();
    g.add_edge(EdgeKind::WasGeneratedBy, m1, t1).unwrap();
    g.add_edge(EdgeKind::Used, t2, d2).unwrap();
    g.add_edge(EdgeKind::WasGeneratedBy, m2, t2).unwrap();
    g.add_edge(EdgeKind::Used, t3, m1).unwrap();
    g.add_edge(EdgeKind::Used, t3, m2).unwrap();
    g.add_edge(EdgeKind::WasGeneratedBy, w, t3).unwrap();
    let idx = ProvIndex::build(&g);
    (g, idx, [d, d2, t1, m1, t2, m2, t3, w])
}

#[test]
fn unconstrained_accepts_both_rounds() {
    let (_, idx, ids) = mixed_commands();
    let view = MaskedGraph::unmasked(&idx);
    let [d, d2, _, m1, _, m2, _, w] = ids;
    // m1's level-2 partners via t3 include m2 (same shape, shared pivot).
    let out = similar_alg_bitset(&view, &[m1], &[w], &AlgConfig::paper_default());
    assert_eq!(out.answer, vec![m1, m2], "plain SimProv matches by shape only");
    // And at depth 4, d pairs with d2 through the (t1, t2) activity pair.
    let out = similar_alg_bitset(&view, &[d], &[w], &AlgConfig::paper_default());
    assert_eq!(out.answer, vec![d, d2]);
}

#[test]
fn same_command_constraint_prunes_the_finetune_branch() {
    let (g, idx, ids) = mixed_commands();
    let view = MaskedGraph::unmasked(&idx);
    let [d, d2, _, m1, _, m2, _, w] = ids;
    let table = SimilarConstraint::same_command().compile(&g);
    let cfg = AlgConfig { constraint: Some(table), ..AlgConfig::paper_default() };
    // Depth 4 requires pairing t1 ("train") with t2 ("finetune") — rejected:
    // d2 is no longer similar to d.
    let out = similar_alg_bitset(&view, &[d], &[w], &cfg);
    assert_eq!(out.answer, vec![d], "d2 pruned by the same-command rule");
    // Depth 2 still pairs m1 with m2: both sides pivot through the SAME
    // activity t3, so the command constraint holds trivially.
    let out2 = similar_alg_bitset(&view, &[m1], &[w], &cfg);
    assert_eq!(out2.answer, vec![m1, m2]);
    let _ = d2;
}

#[test]
fn constrained_alg_matches_naive_reference_on_fixture() {
    let (g, idx, ids) = mixed_commands();
    let view = MaskedGraph::unmasked(&idx);
    let table = SimilarConstraint::same_command().compile(&g);
    let entities: Vec<VertexId> =
        ids.iter().copied().filter(|&v| idx.kind(v) == prov_model::VertexKind::Entity).collect();
    for &src in &entities {
        for &dst in &entities {
            let cfg = AlgConfig { constraint: Some(table.clone()), ..AlgConfig::paper_default() };
            let a = similar_alg_bitset(&view, &[src], &[dst], &cfg);
            let n = similar_naive_constrained(
                &view,
                &[src],
                &[dst],
                NaiveBudget::default(),
                Some(&table),
            );
            assert_eq!(a.answer, n.answer, "src={src} dst={dst}");
        }
    }
}

/// Random DAGs with a small command vocabulary: constrained SimProvAlg must
/// match the naive reference everywhere.
#[derive(Debug, Clone)]
struct Plan {
    command: u8,
    inputs: Vec<prop::sample::Index>,
    outputs: usize,
}

fn plan() -> impl Strategy<Value = Plan> {
    (0..3u8, proptest::collection::vec(any::<prop::sample::Index>(), 1..3), 1..3usize)
        .prop_map(|(command, inputs, outputs)| Plan { command, inputs, outputs })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn constrained_differential(
        seeds in 1..3usize,
        plans in proptest::collection::vec(plan(), 1..8),
        src_pick in any::<prop::sample::Index>(),
        dst_pick in any::<prop::sample::Index>(),
    ) {
        let mut g = ProvGraph::new();
        let mut entities: Vec<VertexId> =
            (0..seeds).map(|i| g.add_entity(&format!("s{i}"))).collect();
        for (ai, p) in plans.iter().enumerate() {
            let a = g.add_activity(&format!("a{ai}"));
            g.set_vprop(a, "command", format!("cmd{}", p.command));
            let mut used = std::collections::BTreeSet::new();
            for idx in &p.inputs {
                used.insert(*idx.get(&entities));
            }
            for e in used {
                g.add_edge(EdgeKind::Used, a, e).unwrap();
            }
            for oi in 0..p.outputs {
                let e = g.add_entity(&format!("o{ai}_{oi}"));
                g.add_edge(EdgeKind::WasGeneratedBy, e, a).unwrap();
                entities.push(e);
            }
        }
        let idx = ProvIndex::build(&g);
        let view = MaskedGraph::unmasked(&idx);
        let table = SimilarConstraint::same_command().compile(&g);
        let vsrc = vec![*src_pick.get(&entities)];
        let vdst = vec![*dst_pick.get(&entities)];

        let cfg = AlgConfig { constraint: Some(table.clone()), ..AlgConfig::paper_default() };
        let a = similar_alg_bitset(&view, &vsrc, &vdst, &cfg);
        let n = similar_naive_constrained(&view, &vsrc, &vdst, NaiveBudget::default(), Some(&table));
        prop_assert!(!n.stats.dnf);
        prop_assert_eq!(&a.answer, &n.answer);

        // The constrained answer is a subset of the unconstrained one.
        let plain = similar_alg_bitset(&view, &vsrc, &vdst, &AlgConfig::paper_default());
        for v in &a.answer {
            prop_assert!(plain.answer.contains(v));
        }
    }
}
