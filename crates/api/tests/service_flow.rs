//! End-to-end service behaviour: the session registry (the acceptance
//! criterion — ≥ 2 concurrent sessions adjusted independently), the unified
//! error surface, the injected clock, and a property test that the
//! interactive `expand`+`restrict` path through [`ProvService`] matches the
//! equivalent one-shot `pgseg` with a combined boundary.

use proptest::prelude::*;
use prov_api::*;
use prov_model::{EdgeKind, VertexKind};
use prov_segment::{Boundary, PgSegOptions, PgSegQuery, VertexPred};

/// Ingest a training pipeline through the envelope: `data-v1`, then `steps`
/// train runs, each using the dataset and the previous weights, producing
/// `weights-vN` + `log-vN`, with alice/bob alternating.
fn ingest_pipeline(service: &mut ProvService, steps: usize) {
    for name in ["alice", "bob"] {
        let r = service.handle(&Request::AddAgent(AddAgentRequest { name: name.into() }));
        assert!(!r.is_error(), "{r:?}");
    }
    let r = service.handle(&Request::AddArtifact(AddArtifactRequest {
        artifact: "data".into(),
        attributed_to: Some("alice".into()),
    }));
    assert!(!r.is_error(), "{r:?}");
    for i in 0..steps {
        let agent = if i % 2 == 0 { "alice" } else { "bob" };
        let mut inputs: Vec<EntityRef> = vec!["data-v1".into()];
        if i > 0 {
            inputs.push(format!("weights-v{i}").as_str().into());
        }
        let r = service.handle(&Request::RecordActivity(RecordActivityRequest {
            command: format!("train --step {i}"),
            agent: Some(agent.into()),
            inputs,
            outputs: vec![
                OutputSpecDto {
                    artifact: "weights".into(),
                    props: vec![("acc".into(), (0.5 + i as f64 / 100.0).into())],
                },
                OutputSpecDto { artifact: "log".into(), props: vec![] },
            ],
            props: vec![("step".into(), (i as i64).into())],
        }));
        assert!(!r.is_error(), "{r:?}");
    }
}

fn open_session(service: &mut ProvService, src: &str, dst: &str) -> (SessionId, SegmentDto) {
    let r = service.handle(&Request::OpenSession(OpenSessionRequest {
        src: vec![src.into()],
        dst: vec![dst.into()],
        boundary: BoundarySpec::none(),
        options: SegmentOptions::default(),
    }));
    match r {
        Response::Session(s) => (s.session, s.segment),
        other => panic!("expected session, got {other:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `OpenSession` + `Expand` + `Restrict` through the service equals the
    /// one-shot `pgseg` whose boundary combines the same expansion and
    /// exclusions (agent / non-ancestry edge kinds — the adjust-safe subset).
    #[test]
    fn session_adjustment_matches_oneshot_with_combined_boundary(
        steps in 2usize..6,
        k in 0u32..3,
        root_step in 1usize..5,
        exclude_agents in (0..2i32).prop_map(|x| x == 1),
        edge_mask in 0u8..8,
    ) {
        let mut service = ProvService::new();
        ingest_pipeline(&mut service, steps);
        let dst = format!("weights-v{steps}");
        let root = format!("weights-v{}", (root_step % steps).max(1));

        // Interactive path: open plain, expand, then restrict.
        let (id, _) = open_session(&mut service, "data-v1", &dst);
        let r = service.handle(&Request::Expand(ExpandRequest {
            session: id,
            roots: vec![root.as_str().into()],
            k,
        }));
        prop_assert!(!r.is_error(), "{r:?}");
        let mut restrict = BoundarySpec::none();
        if exclude_agents {
            restrict = restrict.with_vertex(VertexPredSpec::ExcludeKind(VertexKind::Agent));
        }
        let excluded_edges: Vec<EdgeKind> = [
            EdgeKind::WasAssociatedWith,
            EdgeKind::WasAttributedTo,
            EdgeKind::WasDerivedFrom,
        ]
        .into_iter()
        .enumerate()
        .filter(|(i, _)| edge_mask & (1 << i) != 0)
        .map(|(_, k)| k)
        .collect();
        for &kind in &excluded_edges {
            restrict = restrict.with_edge(EdgePredSpec::ExcludeKind(kind));
        }
        let r = service.handle(&Request::Restrict(RestrictRequest {
            session: id,
            boundary: restrict,
        }));
        let adjusted = match r {
            Response::Session(s) => s.segment,
            other => panic!("expected session, got {other:?}"),
        };

        // One-shot path with the combined boundary.
        let graph = service.db().graph();
        let vsrc = vec![graph.vertex_by_name("data-v1").unwrap()];
        let vdst = vec![graph.vertex_by_name(&dst).unwrap()];
        let roots = vec![graph.vertex_by_name(&root).unwrap()];
        let mut boundary = Boundary::none().expand(roots, k).without_edge_kinds(&excluded_edges);
        if exclude_agents {
            boundary = boundary.with_vertex_pred(VertexPred::ExcludeKind(VertexKind::Agent));
        }
        let oneshot = service
            .db()
            .segment(
                PgSegQuery::between(vsrc, vdst).with_boundary(boundary),
                &PgSegOptions::default(),
            )
            .unwrap();

        prop_assert_eq!(adjusted.vertex_ids(), oneshot.vertices.clone());
        let adjusted_edges: Vec<_> = adjusted.edges.iter().map(|e| e.id).collect();
        prop_assert_eq!(adjusted_edges, oneshot.edges.clone());
    }
}

#[test]
fn two_sessions_adjust_independently() {
    let mut service = ProvService::new();
    ingest_pipeline(&mut service, 3);

    // Two concurrent sessions over different query windows.
    let (s1, seg1) = open_session(&mut service, "data-v1", "weights-v3");
    let (s2, seg2) = open_session(&mut service, "weights-v1", "weights-v2");
    assert_ne!(s1, s2);
    assert_eq!(service.session_count(), 2);
    let graph = service.db().graph();
    let alice = graph.vertex_by_name("alice").unwrap();
    let bob = graph.vertex_by_name("bob").unwrap();
    assert!(seg1.contains(alice) && seg1.contains(bob));
    assert!(seg2.contains(alice));

    // Restrict only session 1: session 2 must be untouched.
    let r = service.handle(&Request::Restrict(RestrictRequest {
        session: s1,
        boundary: BoundarySpec::none().with_vertex(VertexPredSpec::ExcludeKind(VertexKind::Agent)),
    }));
    let seg1b = match r {
        Response::Session(s) => s.segment,
        other => panic!("{other:?}"),
    };
    assert!(!seg1b.contains(alice) && !seg1b.contains(bob));
    let s2_now = SegmentDto::from_segment(
        service.session(s2).unwrap().graph(),
        service.session(s2).unwrap().segment(),
    );
    assert_eq!(s2_now, seg2, "adjusting s1 leaked into s2");

    // Expand only session 2: session 1 must be untouched.
    let r = service.handle(&Request::Expand(ExpandRequest {
        session: s2,
        roots: vec!["weights-v1".into()],
        k: 1,
    }));
    let seg2b = match r {
        Response::Session(s) => s.segment,
        other => panic!("{other:?}"),
    };
    let data = service.db().graph().vertex_by_name("data-v1").unwrap();
    assert!(seg2b.contains(data), "expansion should pull the dataset in");
    let s1_now = SegmentDto::from_segment(
        service.session(s1).unwrap().graph(),
        service.session(s1).unwrap().segment(),
    );
    assert_eq!(s1_now, seg1b, "adjusting s2 leaked into s1");

    // Closing one session leaves the other live.
    let r = service.handle(&Request::CloseSession(CloseSessionRequest { session: s1 }));
    assert!(matches!(r, Response::Closed(_)));
    assert_eq!(service.session_count(), 1);
    assert!(service.session(s2).is_some());
}

#[test]
fn sessions_survive_later_ingest() {
    let mut service = ProvService::new();
    ingest_pipeline(&mut service, 2);
    let (id, seg) = open_session(&mut service, "data-v1", "weights-v2");
    // Mutate the store after the session opened: the session pins its
    // snapshot, so its segment is unchanged and still adjustable.
    ingest_pipeline(&mut service, 1);
    let r = service.handle(&Request::Expand(ExpandRequest {
        session: id,
        roots: vec!["weights-v1".into()],
        k: 0,
    }));
    let after = match r {
        Response::Session(s) => s.segment,
        other => panic!("{other:?}"),
    };
    assert_eq!(after, seg);
}

#[test]
fn summarize_over_session_segments() {
    let mut service = ProvService::new();
    ingest_pipeline(&mut service, 4);
    let (s1, _) = open_session(&mut service, "data-v1", "weights-v2");
    let (s2, _) = open_session(&mut service, "data-v1", "weights-v4");
    let r = service.handle(&Request::Summarize(SummarizeRequest {
        sessions: vec![s1, s2],
        k: Some(1),
        entity_keys: vec![],
        activity_keys: vec![],
    }));
    let summary = match r {
        Response::Summary(s) => s.summary,
        other => panic!("{other:?}"),
    };
    assert_eq!(summary.segment_count, 2);
    assert!(!summary.vertices.is_empty());
    assert!(summary.compaction_ratio <= 1.0);
    assert!(summary.vertices.len() <= summary.input_vertex_count);
}

#[test]
fn unified_errors_reach_the_wire_with_codes() {
    let mut service = ProvService::new();
    ingest_pipeline(&mut service, 2);

    // Unknown session.
    let r = service.handle(&Request::Expand(ExpandRequest {
        session: SessionId::new(99),
        roots: vec!["data-v1".into()],
        k: 1,
    }));
    let Response::Error(e) = r else { panic!("expected error") };
    assert_eq!(e.code, ErrorCode::UnknownSession);

    // Unknown entity name.
    let r = service.handle(&Request::Lineage(LineageRequest {
        entity: "nothing-v9".into(),
        direction: LineageDir::Ancestors,
        max_hops: None,
    }));
    let Response::Error(e) = r else { panic!("expected error") };
    assert_eq!(e.code, ErrorCode::UnknownEntity);
    assert!(e.message.contains("nothing-v9"));

    // Non-entity PgSeg query vertices → the new InvalidQuery store variant.
    let r = service.handle(&Request::Segment(SegmentRequest {
        src: vec!["alice".into()],
        dst: vec!["weights-v2".into()],
        boundary: BoundarySpec::none(),
        options: SegmentOptions::default(),
    }));
    let Response::Error(e) = r else { panic!("expected error") };
    assert_eq!(e.code, ErrorCode::InvalidQuery);

    // Expansions are rejected inside Restrict.
    let (id, _) = open_session(&mut service, "data-v1", "weights-v2");
    let r = service.handle(&Request::Restrict(RestrictRequest {
        session: id,
        boundary: BoundarySpec::none().with_expansion(vec!["data-v1".into()], 1),
    }));
    let Response::Error(e) = r else { panic!("expected error") };
    assert_eq!(e.code, ErrorCode::InvalidQuery);

    // Summarize across different snapshots is refused.
    let (s1, _) = open_session(&mut service, "data-v1", "weights-v2");
    ingest_pipeline(&mut service, 1); // new snapshot
    let (s2, _) = open_session(&mut service, "data-v1", "weights-v2");
    let r = service.handle(&Request::Summarize(SummarizeRequest {
        sessions: vec![s1, s2],
        k: None,
        entity_keys: vec![],
        activity_keys: vec![],
    }));
    let Response::Error(e) = r else { panic!("expected error") };
    assert_eq!(e.code, ErrorCode::InvalidQuery);

    // A kind-invalid ingest is rejected atomically: the store is untouched.
    let before = (service.db().graph().vertex_count(), service.db().graph().edge_count());
    let r = service.handle(&Request::RecordActivity(RecordActivityRequest {
        command: "train".into(),
        agent: Some("data-v1".into()), // an entity, not an agent
        inputs: vec![],
        outputs: vec![OutputSpecDto { artifact: "model".into(), props: vec![] }],
        props: vec![],
    }));
    let Response::Error(e) = r else { panic!("expected error") };
    assert_eq!(e.code, ErrorCode::InvalidEdge);
    let after = (service.db().graph().vertex_count(), service.db().graph().edge_count());
    assert_eq!(after, before, "failed ingest must mutate nothing");

    // Malformed JSON on the byte entry.
    let wire = service.handle_json("{\"Expand\": ");
    assert!(wire.contains("\"MalformedRequest\""), "got {wire}");
}

#[test]
fn duplicate_names_resolve_to_latest_and_keep_history() {
    let mut service = ProvService::new();
    ingest_pipeline(&mut service, 3);
    let graph = service.db().graph();

    // Each train step ran the distinctly-named command "train --step i", but
    // the versioned artifacts all share the "weights-vN" naming: no
    // duplicates yet, every versioned name addresses exactly one vertex.
    assert_eq!(graph.versions_of("weights-v1").len(), 1);

    // Now create true duplicates: two agents registered under one name.
    let r = service.handle(&Request::AddAgent(AddAgentRequest { name: "carol".into() }));
    let first_carol = match r {
        Response::Vertex(v) => v.id,
        other => panic!("{other:?}"),
    };
    let r = service.handle(&Request::AddAgent(AddAgentRequest { name: "carol".into() }));
    let second_carol = match r {
        Response::Vertex(v) => v.id,
        other => panic!("{other:?}"),
    };
    assert_ne!(first_carol, second_carol);

    // The seed silently clobbered `by_name`, losing first_carol. Now:
    // latest wins for EntityRef::Name resolution…
    let graph = service.db().graph();
    assert_eq!(graph.vertex_by_name("carol"), Some(second_carol));
    // …and the full version history stays addressable.
    assert_eq!(graph.versions_of("carol"), &[first_carol, second_carol]);

    // A name-addressed ingest binds to the latest duplicate.
    let r = service.handle(&Request::RecordActivity(RecordActivityRequest {
        command: "evaluate".into(),
        agent: Some("carol".into()),
        inputs: vec!["weights-v3".into()],
        outputs: vec![OutputSpecDto { artifact: "report".into(), props: vec![] }],
        props: vec![],
    }));
    assert!(!r.is_error(), "{r:?}");
    let graph = service.db().graph();
    let eval = graph.vertex_by_name("evaluate").unwrap();
    let agents: Vec<_> = graph
        .out_edges(eval)
        .filter(|(_, e)| e.kind == EdgeKind::WasAssociatedWith)
        .map(|(_, e)| e.dst)
        .collect();
    assert_eq!(agents, vec![second_carol], "name resolution bound the latest carol");
}

#[test]
fn injected_clock_stamps_latency() {
    // A ticking clock advances 1000µs per reading; handle() reads twice, so
    // every successful response reports exactly one tick of latency.
    let mut service = ProvService::with_clock(Box::new(ManualClock::ticking(1000)));
    let r = service.handle(&Request::AddAgent(AddAgentRequest { name: "alice".into() }));
    match r {
        Response::Vertex(v) => {
            assert_eq!(v.stats.elapsed_micros, 1000);
            assert_eq!(v.stats.vertices, 1);
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn export_import_round_trips_through_the_envelope() {
    let mut service = ProvService::new();
    ingest_pipeline(&mut service, 2);
    let before = service.db().graph().vertex_count();
    let r = service.handle(&Request::Export(ExportRequest {}));
    let doc = match r {
        Response::Document(d) => d,
        other => panic!("{other:?}"),
    };
    assert_eq!(doc.stats.vertices, before);

    let mut restored = ProvService::new();
    let r = restored.handle(&Request::Import(ImportRequest { json: doc.json }));
    match r {
        Response::Imported(i) => assert_eq!(i.stats.vertices, before),
        other => panic!("{other:?}"),
    }
    // The restored service answers the same queries.
    let (_, seg) = open_session(&mut restored, "data-v1", "weights-v2");
    assert!(seg.vertices.len() >= 4);
}

#[test]
fn lineage_is_sorted_bounded_and_counter_stamped() {
    let mut service = ProvService::new();
    ingest_pipeline(&mut service, 4);

    // Unbounded closure: the documented wire contract is ascending-id order.
    let r = service.handle(&Request::Lineage(LineageRequest {
        entity: "weights-v4".into(),
        direction: LineageDir::Ancestors,
        max_hops: None,
    }));
    let full = match r {
        Response::Lineage(l) => l,
        other => panic!("{other:?}"),
    };
    assert!(full.vertices.windows(2).all(|w| w[0] < w[1]), "not sorted: {:?}", full.vertices);
    assert!(!full.vertices.contains(&full.entity), "start vertex must be excluded");
    assert_eq!(full.stats.vertices, full.vertices.len());

    // Bounded: 2 hops = one activity away — a strict, consistent prefix.
    let r = service.handle(&Request::Lineage(LineageRequest {
        entity: "weights-v4".into(),
        direction: LineageDir::Ancestors,
        max_hops: Some(2),
    }));
    let near = match r {
        Response::Lineage(l) => l,
        other => panic!("{other:?}"),
    };
    assert!(near.vertices.len() < full.vertices.len());
    assert!(near.vertices.iter().all(|v| full.vertices.contains(v)));

    // The serving loop's health is on the wire: every successful response
    // carries cumulative reuse/refresh/rebuild counters, and an
    // ingest→query→ingest loop moves them.
    let after_queries = near.stats.snapshot;
    assert!(after_queries.rebuilds >= 1, "{after_queries:?}");
    assert!(after_queries.reuses >= 1, "{after_queries:?}");
    let r = service.handle(&Request::RecordActivity(RecordActivityRequest {
        command: "postprocess".into(),
        agent: None,
        inputs: vec!["weights-v4".into()],
        outputs: vec![OutputSpecDto { artifact: "final".into(), props: vec![] }],
        props: vec![],
    }));
    assert!(!r.is_error(), "{r:?}");
    let r = service.handle(&Request::Lineage(LineageRequest {
        entity: "final-v1".into(),
        direction: LineageDir::Ancestors,
        max_hops: None,
    }));
    let post_ingest = match r {
        Response::Lineage(l) => l.stats.snapshot,
        other => panic!("{other:?}"),
    };
    assert!(
        post_ingest.refreshes > after_queries.refreshes,
        "a small post-snapshot ingest must refresh, not rebuild: \
         {after_queries:?} -> {post_ingest:?}"
    );
    assert_eq!(post_ingest.rebuilds, after_queries.rebuilds);
}

#[test]
fn durability_counters_balance_on_the_wire() {
    use prov_core::{DurabilityPolicy, ProvDb};
    use prov_store::storage::MemIo;

    // In-memory services report all-zero durability (no storage attached).
    let mut plain = ProvService::new();
    let r = plain.handle(&Request::AddAgent(AddAgentRequest { name: "alice".into() }));
    let stats = r.stats().expect("vertex responses carry stats");
    assert_eq!(stats.durability, DurabilityActivity::default());

    // A durable service stamps balanced counters on every response.
    let disk = MemIo::new();
    let db =
        ProvDb::open_with_io(Box::new(disk.clone()), DurabilityPolicy::never_compact()).unwrap();
    let mut service = ProvService::from_db(db);
    ingest_pipeline(&mut service, 3);
    // 2 agents + 1 artifact + 3 activities = 6 successful mutating requests,
    // each committing exactly one WAL batch with one fsync.
    let r = service.handle(&Request::Lineage(LineageRequest {
        entity: "weights-v3".into(),
        direction: LineageDir::Ancestors,
        max_hops: None,
    }));
    let d = r.stats().expect("lineage responses carry stats").durability;
    assert_eq!(d.wal_appends, 6, "one batch per mutating request: {d:?}");
    assert_eq!(d.fsyncs, d.wal_appends, "fsync-on-commit: one fsync per batch");
    assert_eq!(d.recoveries, 1, "opening the database is one recovery");
    assert_eq!((d.truncated_tail_bytes, d.snapshots_written, d.batches_replayed), (0, 0, 0));

    // A rejected mutation commits nothing: counters are unchanged.
    let r = service.handle(&Request::RecordActivity(RecordActivityRequest {
        command: "x".into(),
        agent: Some("weights-v1".into()), // an entity, not an agent
        inputs: vec![],
        outputs: vec![],
        props: vec![],
    }));
    assert!(r.is_error());
    let r = service.handle(&Request::Export(ExportRequest {}));
    assert_eq!(r.stats().unwrap().durability.wal_appends, 6);

    // Reboot the service from the same disk: the replayed counters balance
    // against what was committed, and the graph is intact on the wire.
    let db2 =
        ProvDb::open_with_io(Box::new(disk.clone()), DurabilityPolicy::never_compact()).unwrap();
    let mut service2 = ProvService::from_db(db2);
    let r = service2.handle(&Request::Lineage(LineageRequest {
        entity: "weights-v3".into(),
        direction: LineageDir::Ancestors,
        max_hops: None,
    }));
    let (stats, n_ancestors) = match &r {
        Response::Lineage(l) => (l.stats, l.vertices.len()),
        other => panic!("expected lineage, got {other:?}"),
    };
    assert!(n_ancestors >= 4, "recovered lineage too small: {n_ancestors}");
    let d2 = stats.durability;
    assert_eq!(d2.batches_replayed, 6, "every committed batch replays on reopen");
    assert_eq!(d2.recoveries, 1);
    assert_eq!(d2.wal_appends, 0, "no new commits since reopen");
}

#[test]
fn stats_snapshot_field_is_optional_on_the_wire() {
    // Old clients omit `snapshot` (and `max_hops`): both default.
    let stats: Stats =
        serde_json::from_str(r#"{"elapsed_micros":5,"vertices":1,"edges":2}"#).unwrap();
    assert_eq!(stats.snapshot, SnapshotActivity::default());
    let req: Request = serde_json::from_str(
        r#"{"Lineage":{"entity":"weights-v1","direction":{"Ancestors":null}}}"#,
    )
    .unwrap_or_else(|_| {
        serde_json::from_str(r#"{"Lineage":{"entity":"weights-v1","direction":"Ancestors"}}"#)
            .unwrap()
    });
    match req {
        Request::Lineage(l) => assert_eq!(l.max_hops, None),
        other => panic!("{other:?}"),
    }
}
