//! The one traversal engine behind every compiled read path.
//!
//! Evaluation state is a sorted, duplicate-free row set of vertex ids.
//! `Traverse` steps run a multi-source BFS straight over the snapshot's CSR
//! slices with the epoch-stamped scratch discipline of `prov-core`'s
//! lineage engine (PR 5) and its chunked level-parallel frontier machinery
//! (PR 6): `threads` is a *chunk count*, parallel levels freeze the stamps
//! and merge per-chunk discoveries sequentially in chunk order, so the
//! answer is byte-identical at any chunk count — the property every
//! differential proptest in `tests/` pins.
//!
//! **Bounded replay.** Every evaluation runs against a [`DeltaCursor`]
//! watermark. Because the store is append-only and every CSR row keeps its
//! edge ids strictly ascending, filtering adjacency entries to
//! `edge_id < watermark.edges` (and start rows to
//! `id < watermark.vertices`) reproduces — exactly — the evaluation this
//! engine would have produced over the snapshot as it stood at that
//! watermark, even when the snapshot handed in has since grown. That is
//! what makes wire cursors structurally stable under concurrent ingest;
//! see [`crate::query::cursor`] for the invariants (property *filters* read
//! the live store and need a pinned session for byte-stability, since
//! property writes do not move the cursor).

use crate::error::{StoreError, StoreResult};
use crate::graph::{DeltaCursor, ProvGraph};
use crate::query::ir::{Project, PropFilter, StartSet, Step, Traverse};
use crate::query::plan::Plan;
use crate::snapshot::{Csr, ProvIndex};
use prov_model::VertexId;
use std::cell::RefCell;

/// Below this many frontier vertices a BFS level expands inline even when
/// chunking is requested — fanning a tiny level out costs more than the
/// scan (same threshold as the lineage engine).
pub const PAR_FRONTIER_MIN: usize = 1024;

/// Per-evaluation observability counters, surfaced on the wire as
/// `QueryActivity`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Pipeline steps evaluated.
    pub steps: u32,
    /// Rows scanned: frontier vertices expanded by traverses plus rows
    /// tested by filters.
    pub rows_scanned: u64,
    /// Largest BFS frontier across all traverse steps.
    pub frontier_peak: u32,
}

/// Result of evaluating a plan.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryOutput {
    /// Projected rows, ascending by id (empty under [`Project::Count`]).
    pub rows: Vec<VertexId>,
    /// Row count before projection.
    pub count: u64,
    /// Observability counters.
    pub stats: QueryStats,
}

/// Reusable visited state: `u32` epoch stamps over the dense vertex space
/// (the scratch discipline of DESIGN.md §6, owned per thread).
#[derive(Debug, Default)]
struct EvalScratch {
    stamps: Vec<u32>,
    epoch: u32,
    frontier: Vec<VertexId>,
    next: Vec<VertexId>,
}

impl EvalScratch {
    fn begin(&mut self, n: usize) {
        if self.stamps.len() < n {
            self.stamps.resize(n, 0);
        }
        self.epoch = match self.epoch.checked_add(1) {
            Some(e) => e,
            None => {
                self.stamps.fill(0);
                1
            }
        };
    }

    #[inline]
    fn mark(&mut self, v: VertexId) -> bool {
        let slot = &mut self.stamps[v.index()];
        if *slot == self.epoch {
            false
        } else {
            *slot = self.epoch;
            true
        }
    }
}

/// Run `f` on this thread's scratch; a re-entrant call falls back to a
/// fresh scratch instead of panicking on the borrow.
fn with_scratch<R>(f: impl FnOnce(&mut EvalScratch) -> R) -> R {
    thread_local! {
        static SCRATCH: RefCell<EvalScratch> = RefCell::new(EvalScratch::default());
    }
    SCRATCH.with(|cell| match cell.try_borrow_mut() {
        Ok(mut scratch) => f(&mut scratch),
        Err(_) => f(&mut EvalScratch::default()),
    })
}

/// Evaluate `plan` over the full extent of `index`.
///
/// `graph` serves property/name predicates (the snapshot carries neither);
/// it must be the graph `index` was frozen from. `threads` is the chunk
/// count for parallel BFS levels; the answer does not depend on it.
pub fn evaluate(
    graph: &ProvGraph,
    index: &ProvIndex,
    plan: &Plan,
    threads: usize,
) -> StoreResult<QueryOutput> {
    evaluate_at(graph, index, plan, index.cursor(), threads)
}

/// [`evaluate`] against an explicit snapshot watermark (bounded replay —
/// the cursor resumption path).
pub fn evaluate_at(
    graph: &ProvGraph,
    index: &ProvIndex,
    plan: &Plan,
    watermark: DeltaCursor,
    threads: usize,
) -> StoreResult<QueryOutput> {
    evaluate_with_frontier_min(graph, index, plan, watermark, threads, PAR_FRONTIER_MIN)
}

/// [`evaluate_at`] with an explicit inline-level threshold. Production
/// callers want [`PAR_FRONTIER_MIN`]; differential tests and the TSan lane
/// pass `0` so every level exercises the chunked fan-out and merge.
pub fn evaluate_with_frontier_min(
    graph: &ProvGraph,
    index: &ProvIndex,
    plan: &Plan,
    watermark: DeltaCursor,
    threads: usize,
    frontier_min: usize,
) -> StoreResult<QueryOutput> {
    let snap = index.cursor();
    if watermark.vertices > snap.vertices || watermark.edges > snap.edges {
        return Err(StoreError::InvalidQuery(format!(
            "stale cursor: watermark ({}v/{}e) is ahead of the snapshot ({}v/{}e)",
            watermark.vertices, watermark.edges, snap.vertices, snap.edges
        )));
    }
    let pipeline = plan.pipeline();
    let mut stats = QueryStats::default();
    let vlimit = watermark.vertices as usize;
    let mut rows: Vec<VertexId> = match &pipeline.start {
        StartSet::Ids(ids) => ids.iter().copied().filter(|v| v.index() < vlimit).collect(),
        StartSet::Kind(kind) => {
            // Members are in creation order = ascending id, so the prefix
            // below the watermark is a take_while.
            index.kind_members(*kind).iter().copied().take_while(|v| v.index() < vlimit).collect()
        }
        // lint-ok(narrowing-cast): vlimit <= snapshot n, minted below u32::MAX.
        StartSet::All => (0..vlimit as u32).map(VertexId::new).collect(),
    };
    for step in &pipeline.steps {
        stats.steps += 1;
        match step {
            Step::Traverse(t) => {
                rows =
                    traverse(index, t, &rows, watermark.edges, threads, frontier_min, &mut stats);
            }
            Step::Filter(f) => {
                stats.rows_scanned += rows.len() as u64;
                rows.retain(|&v| filter_matches(graph, index, f, v));
            }
            Step::Limit(n) => rows.truncate(*n),
        }
    }
    let count = rows.len() as u64;
    let rows = match pipeline.project {
        Project::Ids => rows,
        Project::Count => Vec::new(),
    };
    Ok(QueryOutput { rows, count, stats })
}

/// Does `v` satisfy the filter? Kind comes from the snapshot, name and
/// properties from the mutable store (names are write-once; properties are
/// the one live input — see the cursor invariants).
fn filter_matches(graph: &ProvGraph, index: &ProvIndex, f: &PropFilter, v: VertexId) -> bool {
    if let Some(kind) = f.kind {
        if index.kind(v) != kind {
            return false;
        }
    }
    if let Some(name) = &f.name {
        if graph.vertex_name(v) != Some(name.as_str()) {
            return false;
        }
    }
    if let Some(ids) = &f.ids {
        // Normalized (sorted) by `Plan::compile`.
        if ids.binary_search(&v).is_err() {
            return false;
        }
    }
    f.props.iter().all(|(key, want)| graph.vprop(v, key) == Some(want))
}

/// Multi-source BFS from the sorted row set `sources`, emitting vertices at
/// depth `min_hops..=max_hops`. Adjacency entries with
/// `edge_id >= edge_limit` are invisible (bounded replay); pass the
/// watermark's edge count — entries past it never existed at the watermark,
/// and entries below it always target watermark-resident vertices, because
/// an edge's endpoints precede it in the append-only log.
fn traverse(
    index: &ProvIndex,
    t: &Traverse,
    sources: &[VertexId],
    edge_limit: u32,
    threads: usize,
    frontier_min: usize,
    stats: &mut QueryStats,
) -> Vec<VertexId> {
    if t.min_hops > t.max_hops {
        return Vec::new();
    }
    let mut out: Vec<VertexId> = if t.min_hops == 0 { sources.to_vec() } else { Vec::new() };
    if t.max_hops == 0 || sources.is_empty() {
        return out;
    }
    let csrs: Vec<&Csr> = t.edges.iter().map(|&(kind, dir)| index.csr(kind, dir)).collect();
    let n = index.vertex_count();
    let threads = threads.max(1);
    with_scratch(|scratch| {
        scratch.begin(n);
        let mut frontier = std::mem::take(&mut scratch.frontier);
        let mut next = std::mem::take(&mut scratch.next);
        frontier.clear();
        next.clear();
        for &s in sources {
            scratch.mark(s);
            frontier.push(s);
        }
        let mut bufs: Vec<Vec<VertexId>> = (0..threads).map(|_| Vec::new()).collect();
        let mut depth = 0u32;
        while !frontier.is_empty() && depth < t.max_hops {
            depth += 1;
            stats.rows_scanned += frontier.len() as u64;
            // lint-ok(narrowing-cast): distinct vertex ids, below u32::MAX by check_capacity
            stats.frontier_peak = stats.frontier_peak.max(frontier.len() as u32);
            let emit = depth >= t.min_hops;
            if threads <= 1 || frontier.len() < frontier_min {
                // Small level: the sequential step, verbatim.
                for &v in &frontier {
                    for csr in &csrs {
                        for (w, eid) in csr.entries(v) {
                            if eid.raw() < edge_limit && scratch.mark(w) {
                                if emit {
                                    out.push(w);
                                }
                                next.push(w);
                            }
                        }
                    }
                }
            } else {
                // Parallel level: freeze the stamps, fan the frontier out.
                let ranges = rayon_core::chunk_ranges(frontier.len(), threads);
                {
                    let stamps: &[u32] = &scratch.stamps;
                    let epoch = scratch.epoch;
                    let level: &[VertexId] = &frontier;
                    let csrs = &csrs;
                    rayon_core::scope(|s| {
                        for (range, buf) in ranges.into_iter().zip(bufs.iter_mut()) {
                            let chunk = &level[range];
                            s.spawn(move || {
                                // The worker's own epoch scratch dedups
                                // within the chunk; a helping caller whose
                                // scratch is already borrowed falls back
                                // to a fresh one (see `with_scratch`).
                                with_scratch(|local| {
                                    local.begin(n);
                                    for &v in chunk {
                                        for csr in csrs {
                                            for (w, eid) in csr.entries(v) {
                                                if eid.raw() < edge_limit
                                                    && stamps[w.index()] != epoch
                                                    && local.mark(w)
                                                {
                                                    buf.push(w);
                                                }
                                            }
                                        }
                                    }
                                });
                            });
                        }
                    });
                }
                // Synchronized merge: the authoritative scratch resolves
                // cross-chunk duplicates; chunk order keeps it
                // deterministic.
                for buf in &mut bufs {
                    for &w in buf.iter() {
                        if scratch.mark(w) {
                            if emit {
                                out.push(w);
                            }
                            next.push(w);
                        }
                    }
                    buf.clear();
                }
            }
            std::mem::swap(&mut frontier, &mut next);
            next.clear();
        }
        scratch.frontier = frontier;
        scratch.next = next;
    });
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::ProvGraph;
    use crate::query::ir::Pipeline;
    use crate::snapshot::Direction;
    use prov_model::{EdgeKind, VertexKind};

    /// d → t1 → w1 → t2 → w2 plus a side input s → t2 (the lineage test
    /// chain), with properties on the entities.
    fn chain() -> (ProvGraph, ProvIndex, [VertexId; 6]) {
        let mut g = ProvGraph::new();
        let d = g.add_entity("d");
        let t1 = g.add_activity("t1");
        let w1 = g.add_entity("w1");
        let t2 = g.add_activity("t2");
        let w2 = g.add_entity("w2");
        let s = g.add_entity("s");
        g.add_edge(EdgeKind::Used, t1, d).unwrap();
        g.add_edge(EdgeKind::WasGeneratedBy, w1, t1).unwrap();
        g.add_edge(EdgeKind::Used, t2, w1).unwrap();
        g.add_edge(EdgeKind::Used, t2, s).unwrap();
        g.add_edge(EdgeKind::WasGeneratedBy, w2, t2).unwrap();
        g.set_vprop(d, "stage", "raw");
        g.set_vprop(w1, "stage", "weights");
        g.set_vprop(w2, "stage", "weights");
        let idx = ProvIndex::build(&g);
        (g, idx, [d, t1, w1, t2, w2, s])
    }

    const ANCESTRY_UP: [(EdgeKind, Direction); 2] =
        [(EdgeKind::WasGeneratedBy, Direction::Out), (EdgeKind::Used, Direction::Out)];

    fn run(g: &ProvGraph, idx: &ProvIndex, p: Pipeline) -> QueryOutput {
        evaluate(g, idx, &Plan::compile(p).unwrap(), 1).unwrap()
    }

    #[test]
    fn traverse_emits_depth_window() {
        let (g, idx, [d, t1, w1, t2, w2, s]) = chain();
        let _ = (d, t1);
        // Full ancestry closure of w2, start excluded.
        let closure =
            run(&g, &idx, Pipeline::from_ids(vec![w2]).traverse(&ANCESTRY_UP, 1, u32::MAX));
        assert_eq!(closure.rows, vec![d, t1, w1, t2, s]);
        // Ring at exactly 2 hops.
        let ring = run(&g, &idx, Pipeline::from_ids(vec![w2]).traverse(&ANCESTRY_UP, 2, 2));
        assert_eq!(ring.rows, vec![w1, s]);
        // min 0 keeps the source.
        let with_self = run(&g, &idx, Pipeline::from_ids(vec![w2]).traverse(&ANCESTRY_UP, 0, 1));
        assert_eq!(with_self.rows, vec![t2, w2]);
        // min > max is empty, not an error (the Within(0) lowering).
        let empty = run(&g, &idx, Pipeline::from_ids(vec![w2]).traverse(&ANCESTRY_UP, 1, 0));
        assert!(empty.rows.is_empty());
    }

    #[test]
    fn filter_limit_count_project() {
        let (g, idx, [d, _, w1, _, w2, s]) = chain();
        let _ = s;
        let weights = run(
            &g,
            &idx,
            Pipeline::from_kind(VertexKind::Entity).filter(PropFilter::prop("stage", "weights")),
        );
        assert_eq!(weights.rows, vec![w1, w2]);
        let limited = run(&g, &idx, Pipeline::from_kind(VertexKind::Entity).limit(2));
        assert_eq!(limited.rows, vec![d, w1]);
        let counted = run(&g, &idx, Pipeline::from_kind(VertexKind::Entity).count());
        assert!(counted.rows.is_empty());
        assert_eq!(counted.count, 4);
    }

    #[test]
    fn out_of_range_start_ids_are_dropped() {
        let (g, idx, _) = chain();
        let out = run(
            &g,
            &idx,
            Pipeline::from_ids(vec![VertexId::new(9999)]).traverse(&ANCESTRY_UP, 1, 3),
        );
        assert!(out.rows.is_empty());
    }

    #[test]
    fn chunk_counts_do_not_change_the_answer() {
        let (g, idx, ids) = chain();
        let plan =
            Plan::compile(Pipeline::from_ids(vec![ids[4]]).traverse(&ANCESTRY_UP, 1, u32::MAX))
                .unwrap();
        let seq = evaluate_with_frontier_min(&g, &idx, &plan, idx.cursor(), 1, 0).unwrap();
        for threads in [2, 4, 8] {
            let par =
                evaluate_with_frontier_min(&g, &idx, &plan, idx.cursor(), threads, 0).unwrap();
            assert_eq!(par.rows, seq.rows, "diverged at {threads} chunks");
        }
    }

    #[test]
    fn bounded_replay_reproduces_the_old_snapshot() {
        let (mut g, old_idx, [d, ..]) = chain();
        let old_cursor = g.cursor();
        // Grow the graph: a new consumer of d.
        let t3 = g.add_activity("t3");
        let w3 = g.add_entity("w3");
        g.add_edge(EdgeKind::Used, t3, d).unwrap();
        g.add_edge(EdgeKind::WasGeneratedBy, w3, t3).unwrap();
        let new_idx = ProvIndex::build(&g);
        let descend: [(EdgeKind, Direction); 2] =
            [(EdgeKind::Used, Direction::In), (EdgeKind::WasGeneratedBy, Direction::In)];
        let plan =
            Plan::compile(Pipeline::from_ids(vec![d]).traverse(&descend, 1, u32::MAX)).unwrap();
        let over_old = evaluate(&g, &old_idx, &plan, 1).unwrap();
        let replayed = evaluate_at(&g, &new_idx, &plan, old_cursor, 1).unwrap();
        assert_eq!(replayed.rows, over_old.rows, "replay must reproduce the old snapshot");
        let live = evaluate(&g, &new_idx, &plan, 1).unwrap();
        assert!(live.rows.contains(&t3) && live.rows.contains(&w3));
        assert!(!replayed.rows.contains(&t3));
    }

    #[test]
    fn watermark_ahead_of_snapshot_is_rejected() {
        let (g, idx, _) = chain();
        let plan = Plan::compile(Pipeline::from_all()).unwrap();
        let ahead = DeltaCursor { vertices: idx.cursor().vertices + 1, edges: 0 };
        let err = evaluate_at(&g, &idx, &plan, ahead, 1).unwrap_err();
        assert!(err.to_string().contains("stale cursor"), "got {err}");
    }

    #[test]
    fn stats_count_steps_rows_and_frontiers() {
        let (g, idx, [_, _, _, _, w2, _]) = chain();
        let out = run(
            &g,
            &idx,
            Pipeline::from_ids(vec![w2])
                .traverse(&ANCESTRY_UP, 1, u32::MAX)
                .filter(PropFilter::of_kind(VertexKind::Entity)),
        );
        assert_eq!(out.stats.steps, 2);
        assert!(out.stats.frontier_peak >= 2, "level {{w1, s}} has width 2");
        assert!(out.stats.rows_scanned > 0);
    }
}
