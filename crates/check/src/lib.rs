//! Repo-specific lint rules rustc and clippy cannot express (ISSUE 7).
//!
//! Six textual rules over the workspace sources, each encoding a decision
//! the codebase already made and a regression that would silently undo it:
//!
//! * [`STD_COLLECTIONS`] — hash containers must come through
//!   `prov_store::hash::FxHashMap`/`FxHashSet` (deterministic iteration
//!   seeds, faster hashing on small keys), not `std::collections`. The std
//!   types' randomized hasher makes any iteration-order-dependent output
//!   nondeterministic across runs — exactly what the reproduction's
//!   byte-identical snapshot/summary guarantees forbid.
//! * [`THREAD_SPAWN`] — no bare `thread::spawn`: all parallelism goes
//!   through the vendored `rayon-core` pool, whose sync primitives route
//!   through the `loom-lite` model-checking facade. A stray OS thread is
//!   invisible to the model checker and to `PROV_THREADS` sizing.
//! * [`NARROWING_CAST`] — no unchecked `as u8`/`as u16`/`as u32` narrowing
//!   in the `prov-store`/`prov-segment` hot paths; the seed silently wrapped
//!   ids past `u32::MAX`. In-range casts stay allowed with a justification
//!   marker naming *why* the value fits.
//! * [`RELAXED_ORDERING`] — no `Ordering::Relaxed` inside the vendored
//!   executor: the loom-lite model checks it under sequential consistency,
//!   so the real build must not run weaker than what was verified.
//! * [`CSR_TRAVERSAL`] — no direct CSR adjacency walks (`.csr(...)`,
//!   `.neighbors(...)`) outside the query engine
//!   (`crates/store/src/query/eval.rs`) and the snapshot structure itself:
//!   since ISSUE 8 every read path compiles into the query IR, and an
//!   ad-hoc traversal would bypass the watermark/cursor semantics the wire
//!   layer guarantees. The frozen differential references (seed lineage,
//!   CFL views) carry justification markers.
//! * [`RAW_IO`] — no direct `std::fs`/`File`/`OpenOptions` use outside
//!   `crates/store/src/storage/` (ISSUE 9): every durable byte goes through
//!   the `Io` trait so failpoints can intercept it and the kill-point
//!   harness can prove recovery. A raw `std::fs` call is invisible to fault
//!   injection and unordered with respect to the WAL's fsync protocol.
//!   Non-durable tooling (the linter's own walker, the bench report writer)
//!   carries justification markers.
//!
//! Detection runs on a *masked* copy of each file — comments and string
//! literal contents blanked — so a rule name appearing in prose or a test
//! fixture string never trips the gate. A genuine, justified exception is
//! suppressed by a marker comment on the same or the preceding line:
//!
//! ```text
//! // lint-ok(narrowing-cast): dense ids are < u32::MAX by check_capacity
//! ```
//!
//! The reason after the colon is mandatory: a bare marker suppresses
//! nothing. `cargo run -p prov-check` (or `just lint-strict`) walks the
//! workspace and exits non-zero on any finding.

use std::fmt;
use std::path::{Path, PathBuf};

/// One rule violation at a specific source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path of the offending file.
    pub file: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// Rule identifier (what a `lint-ok(...)` marker must name).
    pub rule: &'static str,
    /// The offending source line, trimmed.
    pub excerpt: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file.display(), self.line, self.rule, self.excerpt)
    }
}

/// Where a rule applies, expressed over workspace-relative paths.
#[derive(Debug, Clone, Copy)]
enum Scope {
    /// Every workspace `.rs` file (vendor/ excluded by the walker).
    Workspace,
    /// Library sources of the id-dense hot-path crates.
    HotPaths,
    /// The vendored executor (the one vendor directory the walker enters).
    RayonCore,
    /// Every workspace file except the query engine and the CSR structure —
    /// the only two files allowed to walk adjacency lists directly.
    CsrConsumers,
    /// Every workspace file except the storage engine's own directory — the
    /// only place allowed to touch the filesystem directly.
    StorageConsumers,
    /// Every workspace file except the column codec and the Io backends —
    /// the only places allowed to slurp whole snapshot files into memory.
    SnapshotReaders,
}

/// A lint rule: an identifier, a scope, and a line predicate over masked code.
pub struct Rule {
    /// Identifier used in findings and `lint-ok(...)` markers.
    pub id: &'static str,
    /// One-line rationale, shown in `--list`.
    pub description: &'static str,
    scope: Scope,
    matches: fn(&str) -> bool,
}

/// Ban `std::collections::HashMap`/`HashSet` outside vendor/.
pub const STD_COLLECTIONS: Rule = Rule {
    id: "std-collections",
    description: "use prov_store::hash::FxHashMap/FxHashSet, not std::collections \
                  (randomized hashers break run-to-run determinism)",
    scope: Scope::Workspace,
    matches: |code| {
        code.contains("std::collections::HashMap") || code.contains("std::collections::HashSet")
    },
};

/// Ban bare `thread::spawn` outside vendor/.
pub const THREAD_SPAWN: Rule = Rule {
    id: "thread-spawn",
    description: "no bare thread::spawn; parallelism goes through the rayon-core pool \
                  (model-checked, PROV_THREADS-sized)",
    scope: Scope::Workspace,
    matches: |code| code.contains("thread::spawn(") || code.contains("thread::Builder::new("),
};

/// Ban unchecked narrowing casts in the store/segment hot paths.
pub const NARROWING_CAST: Rule = Rule {
    id: "narrowing-cast",
    description: "no unchecked `as u8`/`as u16`/`as u32` in prov-store/prov-segment src \
                  (the seed wrapped ids past u32::MAX); justify in-range casts with a marker",
    scope: Scope::HotPaths,
    matches: |code| ["u8", "u16", "u32"].iter().any(|ty| has_cast_to(code, ty)),
};

/// Ban `Ordering::Relaxed` inside the vendored executor.
pub const RELAXED_ORDERING: Rule = Rule {
    id: "relaxed-ordering",
    description: "no Ordering::Relaxed in vendor/rayon-core; loom-lite verifies the executor \
                  under SeqCst, the real build must not be weaker",
    scope: Scope::RayonCore,
    matches: |code| code.contains("Ordering::Relaxed"),
};

/// Ban direct CSR adjacency walks outside the query engine.
pub const CSR_TRAVERSAL: Rule = Rule {
    id: "csr-traversal",
    description: "no direct .csr()/.neighbors() walks outside crates/store/src/query/eval.rs; \
                  read paths go through the query IR (watermark/cursor semantics); justify \
                  frozen differential references with a marker",
    scope: Scope::CsrConsumers,
    matches: |code| code.contains(".csr(") || code.contains(".neighbors("),
};

/// Ban direct filesystem access outside the storage engine.
pub const RAW_IO: Rule = Rule {
    id: "raw-io",
    description: "no direct std::fs/File/OpenOptions outside crates/store/src/storage/; \
                  durable bytes go through the Io trait (failpoint-interceptable, \
                  fsync-ordered); justify non-durable tooling with a marker",
    scope: Scope::StorageConsumers,
    matches: |code| {
        code.contains("std::fs")
            || code.contains("OpenOptions::new(")
            || code.contains("File::open(")
            || code.contains("File::create(")
    },
};

/// Ban whole-file snapshot reads outside the column codec and Io backends.
pub const SNAPSHOT_SLURP: Rule = Rule {
    id: "snapshot-slurp",
    description: "no whole-file snapshot reads (read(&snapshot_file_name…), read_to_end) outside \
                  crates/store/src/storage/{column,io}.rs; snapshot bytes are range-read through \
                  ColumnSource so lazy decode stays O(touched columns), not O(image)",
    scope: Scope::SnapshotReaders,
    matches: |code| {
        code.contains("read(&snapshot_file_name")
            || code.contains("read(&snapshot_tmp")
            || code.contains("read_to_end(")
    },
};

/// Every rule the gate enforces.
pub const RULES: [&Rule; 7] = [
    &STD_COLLECTIONS,
    &THREAD_SPAWN,
    &NARROWING_CAST,
    &RELAXED_ORDERING,
    &CSR_TRAVERSAL,
    &RAW_IO,
    &SNAPSHOT_SLURP,
];

/// Does `code` contain a cast `as <ty>` as whole tokens (`has u32` or
/// `alias u32x4` must not match)?
fn has_cast_to(code: &str, ty: &str) -> bool {
    let mut rest = code;
    let mut consumed = 0usize;
    while let Some(pos) = rest.find("as ") {
        let abs = consumed + pos;
        let before_ok = abs == 0
            || !code[..abs].chars().next_back().is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = rest[pos + 3..].trim_start();
        if before_ok && after.starts_with(ty) {
            let tail = after[ty.len()..].chars().next();
            if !tail.is_some_and(|c| c.is_alphanumeric() || c == '_') {
                return true;
            }
        }
        consumed += pos + 3;
        rest = &rest[pos + 3..];
    }
    false
}

/// Does the rule's scope cover this workspace-relative path?
fn in_scope(scope: Scope, path: &Path) -> bool {
    let p = path.to_string_lossy();
    let in_rayon_core = p.starts_with("vendor/rayon-core/");
    match scope {
        Scope::Workspace => !p.starts_with("vendor/"),
        Scope::HotPaths => {
            p.starts_with("crates/store/src/") || p.starts_with("crates/segment/src/")
        }
        Scope::RayonCore => in_rayon_core && p.ends_with(".rs"),
        Scope::CsrConsumers => {
            !p.starts_with("vendor/")
                && p != "crates/store/src/query/eval.rs"
                && p != "crates/store/src/snapshot.rs"
        }
        Scope::StorageConsumers => {
            !p.starts_with("vendor/") && !p.starts_with("crates/store/src/storage/")
        }
        Scope::SnapshotReaders => {
            !p.starts_with("vendor/")
                && p != "crates/store/src/storage/column.rs"
                && p != "crates/store/src/storage/io.rs"
        }
    }
}

/// Extract a justification marker from a raw source line: `lint-ok(<id>):`
/// followed by a non-empty reason suppresses findings of rule `<id>` on this
/// and the next line.
fn marker_justifies(raw: &str, rule_id: &str) -> bool {
    let needle = format!("lint-ok({rule_id}):");
    raw.find(&needle).is_some_and(|pos| !raw[pos + needle.len()..].trim().is_empty())
}

/// Blank out comments and string/char literal *contents* of `source`,
/// preserving line structure and every other byte, so rules match code only.
///
/// Handles line and (nested) block comments, plain and raw strings
/// (`r"…"`/`r#"…"#`), escapes, char literals, and leaves lifetimes (`'a`)
/// alone. Heuristic, not a full lexer — good enough for substring rules.
pub fn mask_source(source: &str) -> String {
    let bytes = source.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0usize;
    let blank = |b: u8| if b == b'\n' { b'\n' } else { b' ' };
    while i < bytes.len() {
        match bytes[i] {
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    out.push(b' ');
                    i += 1;
                }
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                let mut depth = 1usize;
                out.extend_from_slice(b"  ");
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        out.extend_from_slice(b"  ");
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        out.extend_from_slice(b"  ");
                        i += 2;
                    } else {
                        out.push(blank(bytes[i]));
                        i += 1;
                    }
                }
            }
            b'r' if matches!(bytes.get(i + 1), Some(&b'"') | Some(&b'#')) => {
                // Raw string candidate: r"…" or r#…#"…"#…#.
                let mut j = i + 1;
                let mut hashes = 0usize;
                while bytes.get(j) == Some(&b'#') {
                    hashes += 1;
                    j += 1;
                }
                if bytes.get(j) == Some(&b'"') {
                    // Emit the opener verbatim, blank to the matching closer.
                    out.extend_from_slice(&bytes[i..=j]);
                    i = j + 1;
                    let closer: Vec<u8> =
                        std::iter::once(b'"').chain(std::iter::repeat_n(b'#', hashes)).collect();
                    while i < bytes.len() {
                        if bytes[i..].starts_with(&closer) {
                            out.extend_from_slice(&closer);
                            i += closer.len();
                            break;
                        }
                        out.push(blank(bytes[i]));
                        i += 1;
                    }
                } else {
                    out.push(bytes[i]);
                    i += 1;
                }
            }
            b'"' => {
                out.push(b'"');
                i += 1;
                while i < bytes.len() {
                    if bytes[i] == b'\\' && i + 1 < bytes.len() {
                        // Blank escape pairs byte-for-byte: a `\<newline>`
                        // continuation must keep its newline or every later
                        // line number drifts.
                        out.push(b' ');
                        out.push(blank(bytes[i + 1]));
                        i += 2;
                    } else if bytes[i] == b'"' {
                        out.push(b'"');
                        i += 1;
                        break;
                    } else {
                        out.push(blank(bytes[i]));
                        i += 1;
                    }
                }
            }
            b'\'' => {
                // Char literal or lifetime. A lifetime is `'` + ident not
                // closed by another `'` right after.
                let is_char = matches!(
                    (bytes.get(i + 1), bytes.get(i + 2)),
                    (Some(&b'\\'), _) | (Some(_), Some(&b'\''))
                );
                if is_char {
                    out.push(b'\'');
                    i += 1;
                    if bytes.get(i) == Some(&b'\\') {
                        // Escaped char: blank until the closing quote.
                        while i < bytes.len() && bytes[i] != b'\'' {
                            out.push(blank(bytes[i]));
                            i += 1;
                        }
                    } else {
                        out.push(b' ');
                        i += 1;
                    }
                    if bytes.get(i) == Some(&b'\'') {
                        out.push(b'\'');
                        i += 1;
                    }
                } else {
                    out.push(b'\'');
                    i += 1;
                }
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8(out).expect("masking only replaces ASCII bytes with spaces")
}

/// Lint one file's source against every in-scope rule. `rel` is the
/// workspace-relative path (drives rule scoping and appears in findings).
pub fn check_source(rel: &Path, source: &str) -> Vec<Finding> {
    let rules: Vec<&Rule> = RULES.into_iter().filter(|r| in_scope(r.scope, rel)).collect();
    if rules.is_empty() {
        return Vec::new();
    }
    let masked = mask_source(source);
    let raw_lines: Vec<&str> = source.lines().collect();
    let mut findings = Vec::new();
    for (no, code) in masked.lines().enumerate() {
        for rule in &rules {
            if !(rule.matches)(code) {
                continue;
            }
            let here = raw_lines.get(no).copied().unwrap_or("");
            let above = no.checked_sub(1).and_then(|p| raw_lines.get(p).copied()).unwrap_or("");
            if marker_justifies(here, rule.id) || marker_justifies(above, rule.id) {
                continue;
            }
            findings.push(Finding {
                file: rel.to_path_buf(),
                line: no + 1,
                rule: rule.id,
                excerpt: here.trim().to_string(),
            });
        }
    }
    findings
}

/// Recursively collect the workspace `.rs` files the gate lints: everything
/// under `root` except `target/`, `.git/`, and `vendor/` — with the single
/// exception of `vendor/rayon-core` (the executor the relaxed-ordering rule
/// exists for).
pub fn workspace_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        // lint-ok(raw-io): the linter's own source walker, nothing durable.
        for entry in std::fs::read_dir(&dir)? {
            let path = entry?.path();
            let rel = path.strip_prefix(root).unwrap_or(&path);
            let rel_str = rel.to_string_lossy();
            if path.is_dir() {
                let name = path.file_name().map(|n| n.to_string_lossy().into_owned());
                let name = name.as_deref().unwrap_or("");
                if name == "target" || name == ".git" {
                    continue;
                }
                if rel_str == "vendor" {
                    // Only the executor is workspace-owned enough to lint.
                    let rayon = path.join("rayon-core");
                    if rayon.is_dir() {
                        stack.push(rayon);
                    }
                    continue;
                }
                stack.push(path);
            } else if rel_str.ends_with(".rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Lint the whole workspace rooted at `root`; findings are sorted by path.
pub fn check_workspace(root: &Path) -> std::io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    for path in workspace_files(root)? {
        let rel = path.strip_prefix(root).unwrap_or(&path).to_path_buf();
        // lint-ok(raw-io): the linter reads sources, it stores nothing.
        let source = std::fs::read_to_string(&path)?;
        findings.extend(check_source(&rel, &source));
    }
    Ok(findings)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(rel: &str, source: &str) -> Vec<Finding> {
        check_source(Path::new(rel), source)
    }

    // ---- std-collections ----------------------------------------------

    #[test]
    fn std_collections_violation_is_flagged() {
        let hits = at("crates/x/src/lib.rs", "use std::collections::HashMap;\n");
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rule, "std-collections");
        assert_eq!(hits[0].line, 1);
        // HashSet and fully qualified uses too.
        assert_eq!(at("tests/t.rs", "let s: std::collections::HashSet<u32> = x;\n").len(), 1);
    }

    #[test]
    fn std_collections_conforming_sources_pass() {
        assert!(at("crates/x/src/lib.rs", "use prov_store::hash::FxHashMap;\n").is_empty());
        // Other std::collections types stay allowed.
        assert!(at("crates/x/src/lib.rs", "use std::collections::VecDeque;\n").is_empty());
        // Vendor shims are out of scope.
        assert!(at("vendor/serde/src/lib.rs", "use std::collections::HashMap;\n").is_empty());
    }

    #[test]
    fn std_collections_marker_and_prose_are_ignored() {
        // In a comment or a string literal: not code, no finding.
        assert!(at("src/a.rs", "// std::collections::HashMap is banned\n").is_empty());
        assert!(at("src/a.rs", "let m = \"std::collections::HashMap\";\n").is_empty());
        // Justified exception on the preceding line.
        let src = "// lint-ok(std-collections): FxHashMap's definition site\n\
                   pub use std::collections::HashMap;\n";
        assert!(at("crates/store/src/hash.rs", src).is_empty());
        // A bare marker without a reason suppresses nothing.
        let src = "use std::collections::HashMap; // lint-ok(std-collections):\n";
        assert_eq!(at("src/a.rs", src).len(), 1);
    }

    // ---- thread-spawn -------------------------------------------------

    #[test]
    fn thread_spawn_violation_is_flagged() {
        let hits = at("crates/x/src/lib.rs", "std::thread::spawn(move || work());\n");
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rule, "thread-spawn");
        assert_eq!(at("src/b.rs", "thread::Builder::new().spawn(f);\n").len(), 1);
    }

    #[test]
    fn thread_spawn_conforming_sources_pass() {
        assert!(at("crates/x/src/lib.rs", "rayon_core::scope(|s| s.spawn(|| f()));\n").is_empty());
        assert!(at("vendor/rayon-core/src/sync.rs", "std::thread::spawn(f);\n").is_empty());
        let src = "// lint-ok(thread-spawn): smoke test wants raw OS threads, not the pool\n\
                   let h = std::thread::spawn(run);\n";
        assert!(at("crates/core/tests/smoke.rs", src).is_empty());
    }

    // ---- narrowing-cast -----------------------------------------------

    #[test]
    fn narrowing_cast_violation_is_flagged() {
        let hits = at("crates/store/src/graph.rs", "let id = self.vertices.len() as u32;\n");
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rule, "narrowing-cast");
        assert_eq!(at("crates/segment/src/alg.rs", "let r = rank as u16;\n").len(), 1);
        assert_eq!(at("crates/store/src/interner.rs", "x as u8\n").len(), 1);
    }

    #[test]
    fn narrowing_cast_scope_and_tokens() {
        // Outside the hot-path crates the rule does not apply.
        assert!(at("crates/summary/src/merge.rs", "let id = n as u32;\n").is_empty());
        assert!(at("crates/store/tests/t.rs", "let id = n as u32;\n").is_empty());
        // Widening casts and lookalike tokens pass.
        assert!(at("crates/store/src/graph.rs", "let n = raw as usize;\n").is_empty());
        assert!(at("crates/store/src/graph.rs", "let w = x as u64;\n").is_empty());
        assert!(at("crates/store/src/graph.rs", "let alias = has_u32(y);\n").is_empty());
        // Justified in-range cast passes.
        let src = "// lint-ok(narrowing-cast): check_capacity keeps len below u32::MAX\n\
                   let id = VertexId::new(self.vertices.len() as u32);\n";
        assert!(at("crates/store/src/graph.rs", src).is_empty());
    }

    // ---- relaxed-ordering ---------------------------------------------

    #[test]
    fn relaxed_ordering_violation_is_flagged() {
        let hits = at("vendor/rayon-core/src/pool.rs", "inner.stop.load(Ordering::Relaxed);\n");
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rule, "relaxed-ordering");
    }

    #[test]
    fn relaxed_ordering_scope_is_the_executor_only() {
        // The reproduction's own crates may legitimately use Relaxed for
        // counters; only the model-checked executor is pinned to SeqCst.
        assert!(at("crates/segment/src/par.rs", "hits.load(Ordering::Relaxed);\n").is_empty());
        assert!(at("vendor/rayon-core/src/pool.rs", "stop.load(Ordering::SeqCst);\n").is_empty());
    }

    // ---- csr-traversal ------------------------------------------------

    #[test]
    fn csr_traversal_violation_is_flagged() {
        let hits = at("crates/x/src/lib.rs", "let adj = index.csr(kind, Direction::Out);\n");
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rule, "csr-traversal");
        assert_eq!(at("crates/api/src/service.rs", "for v in csr.neighbors(u) {}\n").len(), 1);
        // Tests are covered too: an ad-hoc walk there still bypasses the IR.
        assert_eq!(at("crates/core/tests/t.rs", "idx.csr(k, d).neighbors(v);\n").len(), 1);
    }

    #[test]
    fn csr_traversal_engine_and_markers_pass() {
        // The single evaluation engine and the CSR structure itself.
        let src = "let adj = index.csr(kind, dir);\nfor w in adj.neighbors(v) {}\n";
        assert!(at("crates/store/src/query/eval.rs", src).is_empty());
        assert!(at("crates/store/src/snapshot.rs", src).is_empty());
        // Vendor stays out of scope; lookalike names don't trip the rule.
        assert!(at("vendor/serde/src/lib.rs", src).is_empty());
        assert!(at("crates/x/src/lib.rs", "let x = sparse_csr(a, b);\n").is_empty());
        // Frozen differential references justify themselves with a marker.
        let src = "// lint-ok(csr-traversal): frozen seed reference the IR is diffed against\n\
                   let first = index.csr(EdgeKind::Used, Direction::Out);\n";
        assert!(at("crates/core/src/lineage.rs", src).is_empty());
    }

    // ---- raw-io -------------------------------------------------------

    #[test]
    fn raw_io_violation_is_flagged() {
        let hits = at("crates/core/src/provdb.rs", "let data = std::fs::read(path)?;\n");
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rule, "raw-io");
        // `use` statements, File, and OpenOptions are all ingress points.
        assert_eq!(at("crates/api/src/service.rs", "use std::fs;\n").len(), 1);
        assert_eq!(at("crates/bench/src/harness.rs", "let f = File::open(p)?;\n").len(), 1);
        assert_eq!(at("src/x.rs", "OpenOptions::new().append(true).open(p)?;\n").len(), 1);
        // Tests are covered too: a test writing files directly dodges the
        // failpoint harness just as much as product code would.
        assert_eq!(at("crates/core/tests/t.rs", "std::fs::write(p, b)?;\n").len(), 1);
    }

    #[test]
    fn raw_io_storage_engine_and_markers_pass() {
        // The storage directory IS the filesystem boundary.
        assert!(at("crates/store/src/storage/io.rs", "std::fs::read(p)?;\n").is_empty());
        assert!(at("crates/store/src/storage/wal.rs", "File::open(p)?;\n").is_empty());
        // But the rest of prov-store is not exempt.
        assert_eq!(at("crates/store/src/graph.rs", "std::fs::read(p)?;\n").len(), 1);
        // Vendor shims and lookalike tokens stay out.
        assert!(at("vendor/serde/src/lib.rs", "std::fs::read(p)?;\n").is_empty());
        assert!(at("src/x.rs", "let profile = Profile::open(p);\n").is_empty());
        // Justified non-durable tooling passes.
        let src = "// lint-ok(raw-io): bench report writer, nothing durable flows here\n\
                   std::fs::write(path, report.to_json())?;\n";
        assert!(at("crates/bench/src/bin/figure.rs", src).is_empty());
        // The group-commit pipeline and the column codec live inside the
        // boundary: raw-io does not fire on them.
        assert!(at("crates/store/src/storage/pipeline.rs", "std::fs::read(p)?;\n").is_empty());
        assert!(at("crates/store/src/storage/column.rs", "File::open(p)?;\n").is_empty());
    }

    #[test]
    fn snapshot_slurp_guards_lazy_decode() {
        // Whole-file snapshot reads outside the column codec / Io backends
        // defeat lazy decode's O(touched-columns) cold start.
        let slurp = "let bytes = self.io.read(&snapshot_file_name(g))?;\n";
        let hits = at("crates/store/src/storage/mod.rs", slurp);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rule, "snapshot-slurp");
        assert_eq!(at("crates/core/src/provdb.rs", "f.read_to_end(&mut buf)?;\n").len(), 1);
        // The codec and the backends ARE the slurp boundary.
        assert!(at("crates/store/src/storage/column.rs", slurp).is_empty());
        assert!(at("crates/store/src/storage/io.rs", "f.read_to_end(&mut buf)?;\n").is_empty());
        // WAL reads are whole-file by design; the rule keys on snapshot names.
        assert!(at("crates/store/src/storage/mod.rs", "self.io.read(&wal_name)?;\n").is_empty());
    }

    // ---- masking / engine mechanics -----------------------------------

    #[test]
    fn masking_preserves_lines_and_blanks_literals() {
        let src = "let a = \"std::collections::HashMap\"; // thread::spawn(\nlet b = 1;\n";
        let masked = mask_source(src);
        assert_eq!(masked.lines().count(), src.lines().count());
        assert!(!masked.contains("HashMap"));
        assert!(!masked.contains("thread::spawn"));
        assert!(masked.contains("let b = 1;"));
    }

    #[test]
    fn masking_handles_raw_strings_block_comments_and_chars() {
        let src = "let r = r#\"Ordering::Relaxed\"#;\n\
                   /* std::collections::HashMap\n   spanning lines */\n\
                   let c = '\\'';\n\
                   fn life<'a>(x: &'a str) -> &'a str { x }\n";
        let masked = mask_source(src);
        assert!(!masked.contains("Relaxed"));
        assert!(!masked.contains("HashMap"));
        assert!(masked.contains("fn life<'a>"), "lifetimes survive masking:\n{masked}");
        assert_eq!(masked.lines().count(), src.lines().count());
    }

    #[test]
    fn masking_keeps_line_numbers_across_string_continuations() {
        // A `\<newline>` continuation inside a string must not swallow the
        // newline, or every finding below it reports the wrong line.
        let src = "let m = \"spans \\\n lines\";\nuse std::collections::HashMap;\n";
        let masked = mask_source(src);
        assert_eq!(masked.lines().count(), src.lines().count());
        let hits = at("src/a.rs", src);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].line, 3);
    }

    #[test]
    fn findings_render_with_location_and_rule() {
        let hits = at("src/x.rs", "let _ = 0;\nuse std::collections::HashMap;\n");
        assert_eq!(hits.len(), 1);
        let shown = hits[0].to_string();
        assert!(shown.contains("src/x.rs:2"), "{shown}");
        assert!(shown.contains("[std-collections]"), "{shown}");
    }
}
