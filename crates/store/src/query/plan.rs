//! Pipeline validation, normalization, and the lowering constructors.
//!
//! [`Plan::compile`] is the single gate between IR-as-data and the
//! evaluator: it rejects pipelines the engine cannot answer faithfully and
//! normalizes the rest so that semantically equal pipelines evaluate
//! identically (selector order, duplicate start ids, and duplicate filter
//! ids never influence the answer).
//!
//! Lowering table (DESIGN.md §9; each target keeps its original as a
//! differential reference):
//!
//! | legacy path                      | pipeline                                       |
//! |----------------------------------|------------------------------------------------|
//! | `lineage` / `lineage_within`     | `Ids[e] → Traverse{ancestry, 1..bound}`        |
//! | `k_hop`                          | `Ids[e] → Traverse{ancestry, k..k}`            |
//! | `ProvGraph::find_by_prop`        | `Kind(k) → Filter{key = value}`                |
//! | `pattern::match_paths` (star)    | `start → [Filter] → Traverse{kinds, min..∞} → Filter` |
//! | `tests/cypher_query1`            | two reachability pipelines joined client-side  |
//!
//! The lineage lowering itself lives in `prov-core` next to
//! `LineageDirection`/`LineageBound` (the bound types are not store
//! concepts); everything store-shaped lowers here.

use crate::error::{StoreError, StoreResult};
use crate::pattern::{NodeSpec, PathPattern, PatternDir, RelSpec};
use crate::query::ir::{Pipeline, PropFilter, StartSet, Step, Traverse};
use crate::snapshot::Direction;
use prov_model::{EdgeKind, PropValue, VertexKind};

/// A validated, normalized pipeline ready for [`crate::query::evaluate`].
#[derive(Debug, Clone, PartialEq)]
pub struct Plan {
    pub(crate) pipeline: Pipeline,
}

impl Plan {
    /// Validate and normalize `pipeline`.
    ///
    /// Rejections (all [`StoreError::InvalidQuery`]):
    /// * a `Traverse` with no edge selectors — it could only ever emit its
    ///   own sources, which `min_hops = max_hops = 0` already says;
    /// * a selector on the reverse agent slices (`S`/`A` inbound): the
    ///   snapshot stores agent relations forward-only, so the engine would
    ///   silently traverse an empty CSR where the mutable store has edges.
    ///
    /// Normalizations: start ids and filter ids are sorted + deduplicated,
    /// traverse selectors are sorted + deduplicated.
    pub fn compile(pipeline: Pipeline) -> StoreResult<Plan> {
        let mut p = pipeline;
        if let StartSet::Ids(ids) = &mut p.start {
            ids.sort_unstable();
            ids.dedup();
        }
        for step in &mut p.steps {
            match step {
                Step::Traverse(t) => {
                    if t.edges.is_empty() {
                        return Err(StoreError::InvalidQuery(
                            "traverse step selects no edge kinds".into(),
                        ));
                    }
                    t.edges.sort_unstable();
                    t.edges.dedup();
                    if let Some((kind, _)) = t.edges.iter().find(|(kind, dir)| {
                        matches!(kind, EdgeKind::WasAssociatedWith | EdgeKind::WasAttributedTo)
                            && *dir == Direction::In
                    }) {
                        return Err(StoreError::InvalidQuery(format!(
                            "traverse selects ({kind:?}, In): agent relations are stored \
                             forward-only and have no inbound CSR slice"
                        )));
                    }
                }
                Step::Filter(f) => {
                    if let Some(ids) = &mut f.ids {
                        ids.sort_unstable();
                        ids.dedup();
                    }
                }
                Step::Limit(_) => {}
            }
        }
        Ok(Plan { pipeline: p })
    }

    /// The normalized pipeline.
    pub fn pipeline(&self) -> &Pipeline {
        &self.pipeline
    }
}

impl Pipeline {
    /// Lowering of [`crate::graph::ProvGraph::find_by_prop`]: a kind start
    /// set filtered by one property equality. Both the hash-probe and the
    /// linear-scan reference answer in ascending id order, which is the
    /// evaluator's row order — the differential proptest pins the three
    /// byte-identical.
    pub fn find_by_prop(kind: VertexKind, key: &str, value: impl Into<PropValue>) -> Pipeline {
        Pipeline::from_kind(kind).filter(PropFilter::prop(key, value))
    }
}

/// Lower a star path pattern to a pipeline, when the pipeline's
/// set-semantics provably match [`crate::pattern::match_paths`]'s endpoint
/// set. Returns `None` — *fall back to the reference engine* — otherwise.
///
/// The lowerable family is patterns whose every step is
/// `-[:kinds*min..]-` (unbounded star) with
///
/// * `min_hops == 0`, or `min_hops == 1` starting from at most one vertex
///   (BFS depth is shortest-path distance: with several starts a vertex one
///   hop from start B may sit at depth 0 because it *is* start A, and a
///   bounded `max_hops` would need path — not distance — semantics);
/// * at most one step (relationship uniqueness spans steps in the
///   reference engine, which set-reachability cannot see);
/// * no reverse agent slices (the snapshot stores `S`/`A` forward-only,
///   while the reference walks the mutable adjacency both ways).
///
/// Within that family, endpoint sets coincide: on a DAG every reachable
/// vertex is reachable by a shortest path, which never repeats an edge, so
/// Cypher's relationship-uniqueness rule prunes nothing.
pub fn lower_pattern(pattern: &PathPattern) -> Option<Pipeline> {
    if pattern.steps.len() > 1 {
        return None;
    }
    let single_start = matches!(&pattern.start.ids, Some(ids) if ids.len() <= 1);
    let mut pipeline = lower_node_start(&pattern.start);
    for (rel, node) in &pattern.steps {
        if rel.max_hops != RelSpec::UNBOUNDED {
            return None;
        }
        if rel.min_hops > 1 || (rel.min_hops == 1 && !single_start) {
            return None;
        }
        let edges = lower_rel_edges(rel)?;
        pipeline = pipeline.traverse(&edges, rel.min_hops, Traverse::UNBOUNDED);
        let filter = lower_node_filter(node);
        if !filter.is_pass_through() {
            pipeline = pipeline.filter(filter);
        }
    }
    Some(pipeline)
}

/// Start `NodeSpec` → start set plus (if needed) a residual filter.
fn lower_node_start(spec: &NodeSpec) -> Pipeline {
    let (start, residual) = match (&spec.ids, spec.kind) {
        (Some(ids), _) => (
            StartSet::Ids(ids.clone()),
            PropFilter {
                kind: spec.kind,
                name: spec.name.clone(),
                props: spec.props.clone(),
                ids: None,
            },
        ),
        (None, Some(kind)) => (
            StartSet::Kind(kind),
            PropFilter {
                kind: None,
                name: spec.name.clone(),
                props: spec.props.clone(),
                ids: None,
            },
        ),
        (None, None) => (
            StartSet::All,
            PropFilter {
                kind: None,
                name: spec.name.clone(),
                props: spec.props.clone(),
                ids: None,
            },
        ),
    };
    let mut pipeline = Pipeline { start, steps: Vec::new(), project: Default::default() };
    if !residual.is_pass_through() {
        pipeline = pipeline.filter(residual);
    }
    pipeline
}

/// Interior/end `NodeSpec` → a plain filter.
fn lower_node_filter(spec: &NodeSpec) -> PropFilter {
    PropFilter {
        kind: spec.kind,
        name: spec.name.clone(),
        props: spec.props.clone(),
        ids: spec.ids.clone(),
    }
}

/// `RelSpec` kinds × direction → CSR selectors; `None` when a reverse agent
/// slice would be needed.
fn lower_rel_edges(rel: &RelSpec) -> Option<Vec<(EdgeKind, Direction)>> {
    let kinds: Vec<EdgeKind> =
        if rel.kinds.is_empty() { EdgeKind::ALL.to_vec() } else { rel.kinds.clone() };
    let mut edges = Vec::new();
    for &kind in &kinds {
        let agent_kind = matches!(kind, EdgeKind::WasAssociatedWith | EdgeKind::WasAttributedTo);
        match rel.dir {
            PatternDir::Forward => edges.push((kind, Direction::Out)),
            PatternDir::Backward => {
                if agent_kind {
                    return None;
                }
                edges.push((kind, Direction::In));
            }
            PatternDir::Either => {
                if agent_kind {
                    return None;
                }
                edges.push((kind, Direction::Out));
                edges.push((kind, Direction::In));
            }
        }
    }
    Some(edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::ir::Project;
    use prov_model::VertexId;

    #[test]
    fn compile_normalizes_ids_and_selectors() {
        let pipeline =
            Pipeline::from_ids(vec![VertexId::new(3), VertexId::new(1), VertexId::new(3)])
                .traverse(
                    &[
                        (EdgeKind::Used, Direction::Out),
                        (EdgeKind::WasGeneratedBy, Direction::Out),
                        (EdgeKind::Used, Direction::Out),
                    ],
                    1,
                    Traverse::UNBOUNDED,
                );
        let plan = Plan::compile(pipeline).unwrap();
        assert_eq!(plan.pipeline().start, StartSet::Ids(vec![VertexId::new(1), VertexId::new(3)]));
        match &plan.pipeline().steps[0] {
            Step::Traverse(t) => assert_eq!(
                t.edges,
                vec![(EdgeKind::Used, Direction::Out), (EdgeKind::WasGeneratedBy, Direction::Out)]
            ),
            other => panic!("unexpected step {other:?}"),
        }
    }

    #[test]
    fn compile_rejects_empty_and_reverse_agent_selectors() {
        let empty = Pipeline::from_all().traverse(&[], 0, 1);
        assert!(matches!(Plan::compile(empty), Err(StoreError::InvalidQuery(_))));
        let reverse_agent =
            Pipeline::from_all().traverse(&[(EdgeKind::WasAssociatedWith, Direction::In)], 0, 1);
        let err = Plan::compile(reverse_agent).unwrap_err();
        assert!(err.to_string().contains("forward-only"), "got {err}");
    }

    #[test]
    fn find_by_prop_lowering_shape() {
        let p = Pipeline::find_by_prop(VertexKind::Entity, "fmt", "csv");
        assert_eq!(p.start, StartSet::Kind(VertexKind::Entity));
        assert_eq!(p.steps.len(), 1);
        assert_eq!(p.project, Project::Ids);
    }

    #[test]
    fn star_pattern_lowers_bounded_patterns_fall_back() {
        let star = PathPattern::node(NodeSpec::any().with_ids(vec![VertexId::new(0)])).then(
            RelSpec::star(
                &[EdgeKind::Used, EdgeKind::WasGeneratedBy],
                PatternDir::Backward,
                0,
                RelSpec::UNBOUNDED,
            ),
            NodeSpec::of_kind(VertexKind::Entity),
        );
        let lowered = lower_pattern(&star).expect("unbounded star lowers");
        assert_eq!(lowered.steps.len(), 2, "traverse + endpoint filter");

        let bounded = PathPattern::node(NodeSpec::any())
            .then(RelSpec::star(&[EdgeKind::Used], PatternDir::Forward, 1, 3), NodeSpec::any());
        assert!(lower_pattern(&bounded).is_none(), "bounded hops need path semantics");

        let multi_start_min1 =
            PathPattern::node(NodeSpec::any().with_ids(vec![VertexId::new(0), VertexId::new(1)]))
                .then(
                    RelSpec::star(&[EdgeKind::Used], PatternDir::Forward, 1, RelSpec::UNBOUNDED),
                    NodeSpec::any(),
                );
        assert!(lower_pattern(&multi_start_min1).is_none(), "min 1 from many starts");

        let reverse_agent = PathPattern::node(NodeSpec::any()).then(
            RelSpec::star(&[EdgeKind::WasAttributedTo], PatternDir::Either, 0, RelSpec::UNBOUNDED),
            NodeSpec::any(),
        );
        assert!(lower_pattern(&reverse_agent).is_none(), "reverse agent slices are empty");

        let all_kinds = PathPattern::node(NodeSpec::any())
            .then(RelSpec::star(&[], PatternDir::Either, 0, RelSpec::UNBOUNDED), NodeSpec::any());
        assert!(lower_pattern(&all_kinds).is_none(), "empty kind list includes agent kinds");
    }

    #[test]
    fn node_only_pattern_lowers_to_start_and_filter() {
        let pat = PathPattern::node(NodeSpec::of_kind(VertexKind::Agent));
        let lowered = lower_pattern(&pat).unwrap();
        assert_eq!(lowered.start, StartSet::Kind(VertexKind::Agent));
        assert!(lowered.steps.is_empty());
    }
}
