//! Collection strategies: `vec` and `btree_set`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::collections::BTreeSet;
use std::fmt::Debug;
use std::ops::Range;

/// Generate a `Vec` whose length is drawn from `len` and whose elements come
/// from `element`.
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, len }
}

/// Output of [`vec`].
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.len.sample(rng);
        (0..n).map(|_| self.element.sample(rng)).collect()
    }
}

/// Generate a `BTreeSet` with a target size drawn from `len`. If the element
/// strategy cannot produce enough distinct values, the set is smaller (same
/// best-effort semantics as real proptest).
pub fn btree_set<S>(element: S, len: Range<usize>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy { element, len }
}

/// Output of [`btree_set`].
pub struct BTreeSetStrategy<S> {
    element: S,
    len: Range<usize>,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord + Debug,
{
    type Value = BTreeSet<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let target = self.len.sample(rng);
        let mut set = BTreeSet::new();
        let mut attempts = 0usize;
        while set.len() < target && attempts < target.saturating_mul(10) + 16 {
            set.insert(self.element.sample(rng));
            attempts += 1;
        }
        set
    }
}
