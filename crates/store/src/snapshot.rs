//! Frozen CSR snapshot ([`ProvIndex`]) for traversal-heavy query algorithms.
//!
//! The segmentation/summarization algorithms traverse `used`/`wasGeneratedBy`
//! adjacency millions of times. Rather than filtering the store's generic
//! adjacency lists on every hop, queries freeze the graph into a compressed
//! sparse row (CSR) snapshot with one array pair per (relationship, direction)
//! that the paper's grammars touch:
//!
//! * `inputs_of(a)`      — `U` out-edges: entities the activity used;
//! * `users_of(e)`       — `U` in-edges: activities that used the entity;
//! * `generators_of(e)`  — `G` out-edges: activities that generated the entity;
//! * `outputs_of(a)`     — `G` in-edges: entities the activity generated;
//! * agent edges (`S`, `A`) and derivations (`D`) for VC4 / boundary support.
//!
//! Each adjacency entry carries its [`EdgeId`] so boundary criteria can exclude
//! individual edges.

use crate::graph::{DeltaCursor, ProvGraph};
use prov_model::{EdgeId, EdgeKind, VertexId, VertexKind};
use std::sync::Arc;

/// A shareable snapshot handle: interactive sessions and service registries
/// hold the frozen index by `Arc` so they can outlive the call stack that
/// built it (and so one freeze serves many concurrent readers).
pub type SharedIndex = Arc<ProvIndex>;

/// One CSR direction of one relationship type.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Csr {
    offsets: Vec<u32>,
    targets: Vec<VertexId>,
    edge_ids: Vec<EdgeId>,
}

impl Csr {
    fn build(n: usize, pairs: &mut [(VertexId, VertexId, EdgeId)]) -> Csr {
        // Sort by (from, edge_id): the edge-id tie-break pins neighbor order
        // to insertion order. A single-key unstable sort would leave the
        // order of a vertex's edges implementation-defined, making worklist
        // order — and every downstream statistic — nondeterministic across
        // toolchain versions.
        pairs.sort_unstable_by_key(|(from, _, eid)| (*from, *eid));
        let mut offsets = vec![0u32; n + 1];
        for (from, ..) in pairs.iter() {
            offsets[from.index() + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let targets = pairs.iter().map(|(_, to, _)| *to).collect();
        let edge_ids = pairs.iter().map(|(.., e)| *e).collect();
        Csr { offsets, targets, edge_ids }
    }

    /// Neighbors of `v`.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        let (lo, hi) = self.range(v);
        &self.targets[lo..hi]
    }

    /// Edge ids parallel to [`Csr::neighbors`].
    #[inline]
    pub fn edge_ids(&self, v: VertexId) -> &[EdgeId] {
        let (lo, hi) = self.range(v);
        &self.edge_ids[lo..hi]
    }

    /// `(neighbor, edge id)` pairs for `v`.
    #[inline]
    pub fn entries(&self, v: VertexId) -> impl Iterator<Item = (VertexId, EdgeId)> + '_ {
        let (lo, hi) = self.range(v);
        self.targets[lo..hi].iter().copied().zip(self.edge_ids[lo..hi].iter().copied())
    }

    /// Degree of `v` in this relation/direction.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        let (lo, hi) = self.range(v);
        hi - lo
    }

    /// Total number of adjacency entries.
    pub fn len(&self) -> usize {
        self.targets.len()
    }

    /// True when the relation is empty.
    pub fn is_empty(&self) -> bool {
        self.targets.is_empty()
    }

    #[inline]
    fn range(&self, v: VertexId) -> (usize, usize) {
        if v.index() + 1 >= self.offsets.len() {
            return (0, 0); // default-constructed (empty) CSR
        }
        (self.offsets[v.index()] as usize, self.offsets[v.index() + 1] as usize)
    }

    /// Check this CSR's structural invariants over a vertex space of `n`;
    /// `name` labels the relation/direction in the violation message.
    ///
    /// The invariants are exactly what the traversal accessors assume — and
    /// what `extend_tail`'s append-at-row-tail merge preserves: an offset
    /// table of `n + 1` monotone non-decreasing entries starting at 0 and
    /// closing at the adjacency length, in-bounds targets, and per-row
    /// strictly ascending edge ids (insertion order; the tie-break `build`
    /// sorts by and `extend_tail` relies on to append without comparing
    /// against frozen entries).
    fn validate(&self, name: &str, n: usize) -> Result<(), String> {
        if self.offsets.len() != n + 1 {
            return Err(format!(
                "{name}: offset table holds {} entries, want n + 1 = {}",
                self.offsets.len(),
                n + 1
            ));
        }
        if self.offsets[0] != 0 {
            return Err(format!("{name}: offsets[0] = {}, want 0", self.offsets[0]));
        }
        if let Some(v) = (0..n).find(|&v| self.offsets[v] > self.offsets[v + 1]) {
            return Err(format!(
                "{name}: offsets decrease at vertex {v} ({} then {})",
                self.offsets[v],
                self.offsets[v + 1]
            ));
        }
        let total = self.offsets[n] as usize;
        if total != self.targets.len() || self.targets.len() != self.edge_ids.len() {
            return Err(format!(
                "{name}: closing offset {total} vs {} targets / {} edge ids",
                self.targets.len(),
                self.edge_ids.len()
            ));
        }
        if let Some(t) = self.targets.iter().find(|t| t.index() >= n) {
            return Err(format!("{name}: target {t} out of bounds (n = {n})"));
        }
        for v in 0..n {
            let row = &self.edge_ids[self.offsets[v] as usize..self.offsets[v + 1] as usize];
            if let Some(w) = row.windows(2).find(|w| w[0] >= w[1]) {
                return Err(format!(
                    "{name}: edge ids of vertex {v} not strictly ascending ({} then {})",
                    w[0], w[1]
                ));
            }
        }
        Ok(())
    }

    /// Tail-merge `pairs` into the CSR and grow the vertex space to `n`.
    ///
    /// Requires every pair's edge id to exceed every frozen edge id (true by
    /// construction for an append-only store: the delta holds only new edge
    /// ids). Under that invariant each vertex's new entries sort *after* its
    /// old entries in the `(from, edge_id)` order, so the merge appends at
    /// each row tail and never compares against — let alone re-sorts — old
    /// entries: sort the `m_new` pairs, shift the affected row suffix right
    /// in one backward pass, and splice the new entries in. Rows before the
    /// first touched vertex do not move, so the pass costs
    /// `O(m_new log m_new + shifted suffix)`, not `O(m log m)` like
    /// [`Csr::build`].
    fn extend_tail(&mut self, n: usize, pairs: &mut [(VertexId, VertexId, EdgeId)]) {
        debug_assert!(!self.offsets.is_empty(), "extend_tail needs a built CSR");
        // New vertices have empty rows: they inherit the running total.
        let old_total = *self.offsets.last().expect("built CSR has offsets");
        self.offsets.resize(n + 1, old_total);
        if pairs.is_empty() {
            return;
        }
        // Same comparator as `build`: the edge-id tie-break keeps per-vertex
        // neighbor order deterministic (and, per the invariant above, after
        // all frozen entries of that vertex).
        pairs.sort_unstable_by_key(|(from, _, eid)| (*from, *eid));
        // `add[v]` = new entries for vertices < v after the prefix pass, so
        // each row shifts right by exactly `add[v]`.
        let mut add = vec![0u32; n + 1];
        for (from, ..) in pairs.iter() {
            add[from.index() + 1] += 1;
        }
        for i in 0..n {
            add[i + 1] += add[i];
        }
        let old_len = self.targets.len();
        let new_len = old_len + pairs.len();
        self.targets.resize(new_len, VertexId::new(0));
        self.edge_ids.resize(new_len, EdgeId::new(0));
        // One backward pass: rows move right, so writing high rows first
        // never clobbers an unread low row (a row's destination starts at or
        // after the next row's old start).
        let mut pending = pairs.len();
        for v in (0..n).rev() {
            let old_lo = self.offsets[v] as usize;
            let old_hi = self.offsets[v + 1] as usize;
            let new_lo = old_lo + add[v] as usize;
            let fresh = (add[v + 1] - add[v]) as usize;
            for k in (0..fresh).rev() {
                pending -= 1;
                let (_, to, eid) = pairs[pending];
                let pos = new_lo + (old_hi - old_lo) + k;
                self.targets[pos] = to;
                self.edge_ids[pos] = eid;
            }
            if add[v] > 0 && old_hi > old_lo {
                self.targets.copy_within(old_lo..old_hi, new_lo);
                self.edge_ids.copy_within(old_lo..old_hi, new_lo);
            }
            if pending == 0 && add[v] == 0 {
                break; // every remaining row is below the first touched vertex
            }
        }
        for (offset, shift) in self.offsets.iter_mut().zip(&add) {
            *offset += shift;
        }
    }
}

/// Immutable CSR snapshot of a [`ProvGraph`], specialized by relationship type.
///
/// A snapshot remembers the [`DeltaCursor`] it was frozen at, so after the
/// graph grows it can be *refreshed* ([`ProvIndex::refresh_in_place`])
/// instead of rebuilt: the append-only delta is tail-merged into every CSR
/// and the per-vertex tables extend at their ends. `PartialEq` is derived so
/// differential tests can assert a refreshed snapshot is byte-identical to a
/// full [`ProvIndex::build`] of the same graph.
#[derive(Debug, Clone, PartialEq)]
pub struct ProvIndex {
    n: usize,
    /// Log position this snapshot reflects (freshness test + refresh base).
    frozen: DeltaCursor,
    kinds: Vec<VertexKind>,
    birth: Vec<u64>,
    /// Rank of each vertex within its kind (dense per-kind id).
    kind_rank: Vec<u32>,
    /// Members of each kind in creation order (inverse of `kind_rank`).
    kind_members: [Vec<VertexId>; 3],
    used_out: Csr,  // activity -> entities it used
    used_in: Csr,   // entity   -> activities that used it
    gen_out: Csr,   // entity   -> activities that generated it
    gen_in: Csr,    // activity -> entities it generated
    assoc_out: Csr, // activity -> agents
    attr_out: Csr,  // entity   -> agents
    deriv_out: Csr, // entity   -> entities it was derived from
    deriv_in: Csr,  // entity   -> entities derived from it
    counts: [usize; 3],
    edge_counts: [usize; 5],
}

/// Typed `(from, to, edge_id)` pair lists for one edge-id range, one list
/// per (relationship, direction) CSR — the shared collection pass of
/// [`ProvIndex::build`] and [`ProvIndex::refresh_in_place`].
#[derive(Default)]
struct TypedPairs {
    used: Vec<(VertexId, VertexId, EdgeId)>,
    used_rev: Vec<(VertexId, VertexId, EdgeId)>,
    gen: Vec<(VertexId, VertexId, EdgeId)>,
    gen_rev: Vec<(VertexId, VertexId, EdgeId)>,
    assoc: Vec<(VertexId, VertexId, EdgeId)>,
    attr: Vec<(VertexId, VertexId, EdgeId)>,
    deriv: Vec<(VertexId, VertexId, EdgeId)>,
    deriv_rev: Vec<(VertexId, VertexId, EdgeId)>,
    edge_counts: [usize; 5],
}

impl TypedPairs {
    /// Dispatch the edges `[from_edge, graph.edge_count())` by kind.
    fn collect(graph: &ProvGraph, from_edge: u32) -> TypedPairs {
        let mut p = TypedPairs::default();
        // lint-ok(narrowing-cast): the store's check_capacity bounds edge ids below u32::MAX.
        for raw in from_edge..graph.edge_count() as u32 {
            let eid = EdgeId::new(raw);
            let e = graph.edge(eid);
            p.edge_counts[e.kind.as_index()] += 1;
            match e.kind {
                EdgeKind::Used => {
                    p.used.push((e.src, e.dst, eid));
                    p.used_rev.push((e.dst, e.src, eid));
                }
                EdgeKind::WasGeneratedBy => {
                    p.gen.push((e.src, e.dst, eid));
                    p.gen_rev.push((e.dst, e.src, eid));
                }
                EdgeKind::WasAssociatedWith => p.assoc.push((e.src, e.dst, eid)),
                EdgeKind::WasAttributedTo => p.attr.push((e.src, e.dst, eid)),
                EdgeKind::WasDerivedFrom => {
                    p.deriv.push((e.src, e.dst, eid));
                    p.deriv_rev.push((e.dst, e.src, eid));
                }
            }
        }
        p
    }
}

impl ProvIndex {
    /// Freeze `graph` into a snapshot.
    ///
    /// This full build is the *reference* construction: the incremental
    /// [`ProvIndex::refresh_in_place`] path is differential-tested to produce
    /// snapshots `==` to it on every interleaving.
    pub fn build(graph: &ProvGraph) -> ProvIndex {
        let n = graph.vertex_count();
        let mut pairs = TypedPairs::collect(graph, 0);
        let kinds: Vec<VertexKind> = graph.vertex_ids().map(|v| graph.vertex_kind(v)).collect();
        let mut kind_rank = vec![0u32; n];
        let mut kind_members: [Vec<VertexId>; 3] = Default::default();
        for (i, &k) in kinds.iter().enumerate() {
            let members = &mut kind_members[k.as_index()];
            // lint-ok(narrowing-cast): ranks index the vertex log, bounded by check_capacity.
            kind_rank[i] = members.len() as u32;
            // lint-ok(narrowing-cast): i enumerates vertex ids already minted below u32::MAX.
            members.push(VertexId::new(i as u32));
        }
        let index = ProvIndex {
            n,
            frozen: graph.cursor(),
            kinds,
            birth: graph.vertex_ids().map(|v| graph.vertex(v).birth).collect(),
            kind_rank,
            kind_members,
            used_out: Csr::build(n, &mut pairs.used),
            used_in: Csr::build(n, &mut pairs.used_rev),
            gen_out: Csr::build(n, &mut pairs.gen),
            gen_in: Csr::build(n, &mut pairs.gen_rev),
            assoc_out: Csr::build(n, &mut pairs.assoc),
            attr_out: Csr::build(n, &mut pairs.attr),
            deriv_out: Csr::build(n, &mut pairs.deriv),
            deriv_in: Csr::build(n, &mut pairs.deriv_rev),
            counts: [
                graph.kind_count(VertexKind::Entity),
                graph.kind_count(VertexKind::Activity),
                graph.kind_count(VertexKind::Agent),
            ],
            edge_counts: pairs.edge_counts,
        };
        index.paranoid_check();
        index
    }

    /// Freeze `graph` into a reference-counted snapshot ready to be stored in
    /// a session registry ([`SharedIndex`]).
    pub fn build_shared(graph: &ProvGraph) -> SharedIndex {
        Arc::new(ProvIndex::build(graph))
    }

    /// The log position this snapshot reflects.
    #[inline]
    pub fn cursor(&self) -> DeltaCursor {
        self.frozen
    }

    /// Does this snapshot still reflect `graph` exactly? Property writes do
    /// not age a snapshot (it never captured properties); only appended
    /// vertices/edges do.
    #[inline]
    pub fn is_fresh(&self, graph: &ProvGraph) -> bool {
        self.frozen == graph.cursor()
    }

    /// Extend this snapshot in place to cover everything appended to `graph`
    /// since it was frozen.
    ///
    /// Instead of the full rebuild — re-dispatching all `m` edges, re-sorting
    /// every CSR in `O(m log m)`, re-collecting kinds and births — the
    /// refresh dispatches only the `m_new` delta edges, tail-merges them into
    /// each CSR (`Csr::extend_tail`), and appends the new vertices to the
    /// kind/birth/rank tables: `O(n + m_new)` plus the shifted row suffixes.
    /// The result is `==` to `ProvIndex::build(graph)` by construction (and
    /// by the differential proptest in `tests/refresh_differential.rs`).
    ///
    /// # Panics
    ///
    /// Panics when this snapshot's cursor lies beyond `graph`'s log — i.e.
    /// the snapshot was not frozen from `graph` or a prefix-preserving clone
    /// of it.
    pub fn refresh_in_place(&mut self, graph: &ProvGraph) {
        let delta = graph.delta_since(self.frozen);
        if delta.is_empty() {
            return;
        }
        let n = graph.vertex_count();
        // Vertex tables: append-only, so they extend at their tails.
        for v in delta.new_vertices() {
            let k = graph.vertex_kind(v);
            let members = &mut self.kind_members[k.as_index()];
            // lint-ok(narrowing-cast): kind ranks are bounded by the u32 vertex-id space.
            self.kind_rank.push(members.len() as u32);
            members.push(v);
            self.kinds.push(k);
            self.birth.push(graph.vertex(v).birth);
            self.counts[k.as_index()] += 1;
        }
        self.n = n;
        // Edge tables: dispatch the delta, tail-merge per CSR.
        let mut pairs = TypedPairs::collect(graph, self.frozen.edges);
        for (i, c) in pairs.edge_counts.iter().enumerate() {
            self.edge_counts[i] += c;
        }
        self.used_out.extend_tail(n, &mut pairs.used);
        self.used_in.extend_tail(n, &mut pairs.used_rev);
        self.gen_out.extend_tail(n, &mut pairs.gen);
        self.gen_in.extend_tail(n, &mut pairs.gen_rev);
        self.assoc_out.extend_tail(n, &mut pairs.assoc);
        self.attr_out.extend_tail(n, &mut pairs.attr);
        self.deriv_out.extend_tail(n, &mut pairs.deriv);
        self.deriv_in.extend_tail(n, &mut pairs.deriv_rev);
        self.frozen = graph.cursor();
        self.paranoid_check();
    }

    /// [`ProvIndex::refresh_in_place`] on a copy: clone the frozen columns
    /// (a memcpy, no sort, no hash) and extend the copy. This is the refresh
    /// path when the previous snapshot is still pinned by live sessions and
    /// must stay immutable.
    pub fn refreshed(&self, graph: &ProvGraph) -> ProvIndex {
        let mut next = self.clone();
        next.refresh_in_place(graph);
        next
    }

    /// Number of vertices.
    #[inline]
    pub fn vertex_count(&self) -> usize {
        self.n
    }

    /// `λv(v)`.
    #[inline]
    pub fn kind(&self, v: VertexId) -> VertexKind {
        self.kinds[v.index()]
    }

    /// Logical creation time ("order of being").
    #[inline]
    pub fn birth(&self, v: VertexId) -> u64 {
        self.birth[v.index()]
    }

    /// Count of vertices of `kind`.
    pub fn kind_count(&self, kind: VertexKind) -> usize {
        self.counts[kind.as_index()]
    }

    /// Dense rank of `v` within its kind (0-based, creation order). Used as the
    /// universe for per-kind fact bitmaps in SimProvAlg.
    #[inline]
    pub fn kind_rank(&self, v: VertexId) -> u32 {
        self.kind_rank[v.index()]
    }

    /// Members of `kind` in creation order; `kind_members(k)[kind_rank(v)] == v`.
    pub fn kind_members(&self, kind: VertexKind) -> &[VertexId] {
        &self.kind_members[kind.as_index()]
    }

    /// Count of edges of `kind`.
    pub fn edge_kind_count(&self, kind: EdgeKind) -> usize {
        self.edge_counts[kind.as_index()]
    }

    /// Entities used by activity `a` (`U` out-edges).
    #[inline]
    pub fn inputs_of(&self, a: VertexId) -> &[VertexId] {
        self.used_out.neighbors(a)
    }

    /// Activities that used entity `e` (`U` in-edges).
    #[inline]
    pub fn users_of(&self, e: VertexId) -> &[VertexId] {
        self.used_in.neighbors(e)
    }

    /// Activities that generated entity `e` (`G` out-edges).
    #[inline]
    pub fn generators_of(&self, e: VertexId) -> &[VertexId] {
        self.gen_out.neighbors(e)
    }

    /// Entities generated by activity `a` (`G` in-edges).
    #[inline]
    pub fn outputs_of(&self, a: VertexId) -> &[VertexId] {
        self.gen_in.neighbors(a)
    }

    /// Agents associated with activity `a` (`S` edges).
    #[inline]
    pub fn agents_of_activity(&self, a: VertexId) -> &[VertexId] {
        self.assoc_out.neighbors(a)
    }

    /// Agents an entity is attributed to (`A` edges).
    #[inline]
    pub fn agents_of_entity(&self, e: VertexId) -> &[VertexId] {
        self.attr_out.neighbors(e)
    }

    /// Entities `e` was derived from (`D` out-edges).
    #[inline]
    pub fn derived_from(&self, e: VertexId) -> &[VertexId] {
        self.deriv_out.neighbors(e)
    }

    /// Entities derived from `e` (`D` in-edges).
    #[inline]
    pub fn derivations_of(&self, e: VertexId) -> &[VertexId] {
        self.deriv_in.neighbors(e)
    }

    /// Check every structural invariant of the snapshot, naming the first
    /// violated one in the error.
    ///
    /// The catalog (see DESIGN.md §8):
    ///
    /// * vertex columns (`kinds`, `birth`, `kind_rank`) are `n` long and the
    ///   frozen cursor records exactly `n` vertices;
    /// * births are strictly increasing (creation order — what the
    ///   early-stopping rule assumes);
    /// * `counts` match `kind_members` and the member/rank tables form a
    ///   bijection (`kind_members[k][kind_rank[v]] == v` with matching kind)
    ///   covering all `n` vertices;
    /// * `edge_counts` balance against the cursor's edge watermark, and each
    ///   of the eight CSRs holds exactly its relation's tally;
    /// * every CSR satisfies [`Csr`]'s own invariants (monotone offsets
    ///   closing at the adjacency length, in-bounds targets, per-row strictly
    ///   ascending edge ids).
    ///
    /// `O(n + m)`. Under the `paranoid` feature it runs automatically after
    /// every `build`/`refresh_in_place`.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.n;
        if self.kinds.len() != n || self.birth.len() != n || self.kind_rank.len() != n {
            return Err(format!(
                "vertex columns disagree with n = {n}: {} kinds, {} births, {} ranks",
                self.kinds.len(),
                self.birth.len(),
                self.kind_rank.len()
            ));
        }
        if self.frozen.vertices as usize != n {
            return Err(format!(
                "cursor records {} vertices but the snapshot holds {n}",
                self.frozen.vertices
            ));
        }
        if let Some(i) = (1..n).find(|&i| self.birth[i - 1] >= self.birth[i]) {
            return Err(format!(
                "births not strictly increasing at vertex {i} ({} then {})",
                self.birth[i - 1],
                self.birth[i]
            ));
        }
        let mut covered = 0usize;
        for kind in VertexKind::ALL {
            let k = kind.as_index();
            let members = &self.kind_members[k];
            if self.counts[k] != members.len() {
                return Err(format!(
                    "counts[{kind:?}] = {} but kind_members holds {} vertices",
                    self.counts[k],
                    members.len()
                ));
            }
            covered += members.len();
            for (r, &v) in members.iter().enumerate() {
                if v.index() >= n {
                    return Err(format!("kind_members[{kind:?}][{r}] = {v} out of bounds"));
                }
                if self.kinds[v.index()] != kind {
                    return Err(format!(
                        "kind_members[{kind:?}][{r}] = {v} has kind {:?}",
                        self.kinds[v.index()]
                    ));
                }
                if self.kind_rank[v.index()] as usize != r {
                    return Err(format!(
                        "kind_rank of {v} is {} but it sits at rank {r} of {kind:?}",
                        self.kind_rank[v.index()]
                    ));
                }
            }
        }
        if covered != n {
            return Err(format!("kind_members cover {covered} vertices, snapshot holds {n}"));
        }
        let tallied: usize = self.edge_counts.iter().sum();
        if tallied != self.frozen.edges as usize {
            return Err(format!(
                "edge_counts sum to {tallied} but the cursor records {} edges",
                self.frozen.edges
            ));
        }
        let csrs: [(&str, &Csr, usize); 8] = [
            ("used_out", &self.used_out, self.edge_counts[EdgeKind::Used.as_index()]),
            ("used_in", &self.used_in, self.edge_counts[EdgeKind::Used.as_index()]),
            ("gen_out", &self.gen_out, self.edge_counts[EdgeKind::WasGeneratedBy.as_index()]),
            ("gen_in", &self.gen_in, self.edge_counts[EdgeKind::WasGeneratedBy.as_index()]),
            (
                "assoc_out",
                &self.assoc_out,
                self.edge_counts[EdgeKind::WasAssociatedWith.as_index()],
            ),
            ("attr_out", &self.attr_out, self.edge_counts[EdgeKind::WasAttributedTo.as_index()]),
            ("deriv_out", &self.deriv_out, self.edge_counts[EdgeKind::WasDerivedFrom.as_index()]),
            ("deriv_in", &self.deriv_in, self.edge_counts[EdgeKind::WasDerivedFrom.as_index()]),
        ];
        for (name, csr, tally) in csrs {
            if csr.len() != tally {
                return Err(format!(
                    "{name} holds {} entries but edge_counts tallies {tally}",
                    csr.len()
                ));
            }
            csr.validate(name, n)?;
        }
        Ok(())
    }

    /// Under the `paranoid` feature, panic on any violated snapshot
    /// invariant; compiled to nothing otherwise.
    #[inline]
    fn paranoid_check(&self) {
        #[cfg(feature = "paranoid")]
        if let Err(violation) = self.validate() {
            panic!("paranoid snapshot validation failed: {violation}");
        }
    }

    /// Raw CSR accessors (with edge ids) for boundary-aware traversal.
    pub fn csr(&self, kind: EdgeKind, direction: Direction) -> &Csr {
        match (kind, direction) {
            (EdgeKind::Used, Direction::Out) => &self.used_out,
            (EdgeKind::Used, Direction::In) => &self.used_in,
            (EdgeKind::WasGeneratedBy, Direction::Out) => &self.gen_out,
            (EdgeKind::WasGeneratedBy, Direction::In) => &self.gen_in,
            (EdgeKind::WasAssociatedWith, Direction::Out) => &self.assoc_out,
            (EdgeKind::WasAttributedTo, Direction::Out) => &self.attr_out,
            (EdgeKind::WasDerivedFrom, Direction::Out) => &self.deriv_out,
            (EdgeKind::WasDerivedFrom, Direction::In) => &self.deriv_in,
            // S/A edges are only stored forward: agents have no outgoing edges.
            (EdgeKind::WasAssociatedWith | EdgeKind::WasAttributedTo, Direction::In) => {
                static EMPTY: std::sync::OnceLock<Csr> = std::sync::OnceLock::new();
                EMPTY.get_or_init(Csr::default)
            }
        }
    }
}

/// Traversal direction relative to stored edge orientation.
///
/// Serialized so the query IR ([`crate::query`]) can name CSR slices on the
/// wire.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub enum Direction {
    /// Follow edges as stored (src → dst).
    Out,
    /// Follow edges reversed (dst → src).
    In,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::ProvGraph;

    /// Two chained training steps sharing a dataset.
    fn chain() -> (ProvGraph, Vec<VertexId>) {
        let mut g = ProvGraph::new();
        let d = g.add_entity("d");
        let t1 = g.add_activity("t1");
        let w1 = g.add_entity("w1");
        let t2 = g.add_activity("t2");
        let w2 = g.add_entity("w2");
        let alice = g.add_agent("alice");
        g.add_edge(EdgeKind::Used, t1, d).unwrap();
        g.add_edge(EdgeKind::WasGeneratedBy, w1, t1).unwrap();
        g.add_edge(EdgeKind::Used, t2, d).unwrap();
        g.add_edge(EdgeKind::Used, t2, w1).unwrap();
        g.add_edge(EdgeKind::WasGeneratedBy, w2, t2).unwrap();
        g.add_edge(EdgeKind::WasAssociatedWith, t1, alice).unwrap();
        g.add_edge(EdgeKind::WasAttributedTo, d, alice).unwrap();
        g.add_edge(EdgeKind::WasDerivedFrom, w2, w1).unwrap();
        (g, vec![d, t1, w1, t2, w2, alice])
    }

    #[test]
    fn typed_adjacency_matches_graph() {
        let (g, ids) = chain();
        let idx = ProvIndex::build(&g);
        let (d, t1, w1, t2, w2, alice) = (ids[0], ids[1], ids[2], ids[3], ids[4], ids[5]);

        assert_eq!(idx.inputs_of(t1), &[d]);
        let mut t2_in = idx.inputs_of(t2).to_vec();
        t2_in.sort();
        assert_eq!(t2_in, vec![d, w1]);
        let mut d_users = idx.users_of(d).to_vec();
        d_users.sort();
        assert_eq!(d_users, vec![t1, t2]);
        assert_eq!(idx.generators_of(w2), &[t2]);
        assert_eq!(idx.outputs_of(t1), &[w1]);
        assert_eq!(idx.agents_of_activity(t1), &[alice]);
        assert_eq!(idx.agents_of_entity(d), &[alice]);
        assert_eq!(idx.derived_from(w2), &[w1]);
        assert_eq!(idx.derivations_of(w1), &[w2]);
        assert!(idx.inputs_of(d).is_empty()); // entities use nothing
    }

    #[test]
    fn kinds_births_counts_survive_freeze() {
        let (g, ids) = chain();
        let idx = ProvIndex::build(&g);
        assert_eq!(idx.vertex_count(), 6);
        assert_eq!(idx.kind(ids[0]), VertexKind::Entity);
        assert_eq!(idx.kind(ids[1]), VertexKind::Activity);
        assert_eq!(idx.kind(ids[5]), VertexKind::Agent);
        assert_eq!(idx.kind_count(VertexKind::Entity), 3);
        assert_eq!(idx.kind_count(VertexKind::Activity), 2);
        assert_eq!(idx.edge_kind_count(EdgeKind::Used), 3);
        assert_eq!(idx.edge_kind_count(EdgeKind::WasGeneratedBy), 2);
        assert!(idx.birth(ids[0]) < idx.birth(ids[5]));
    }

    #[test]
    fn csr_edge_ids_align_with_neighbors() {
        let (g, ids) = chain();
        let idx = ProvIndex::build(&g);
        let t2 = ids[3];
        let csr = idx.csr(EdgeKind::Used, Direction::Out);
        for (nbr, eid) in csr.entries(t2) {
            let e = g.edge(eid);
            assert_eq!(e.kind, EdgeKind::Used);
            assert_eq!(e.src, t2);
            assert_eq!(e.dst, nbr);
        }
        assert_eq!(csr.degree(t2), 2);
    }

    #[test]
    fn kind_ranks_are_dense_per_kind() {
        let (g, ids) = chain();
        let idx = ProvIndex::build(&g);
        // Entities d, w1, w2 were created in that order.
        assert_eq!(idx.kind_rank(ids[0]), 0); // d
        assert_eq!(idx.kind_rank(ids[2]), 1); // w1
        assert_eq!(idx.kind_rank(ids[4]), 2); // w2
        assert_eq!(idx.kind_rank(ids[1]), 0); // t1 first activity
        assert_eq!(idx.kind_rank(ids[3]), 1); // t2
        assert_eq!(idx.kind_members(VertexKind::Entity), &[ids[0], ids[2], ids[4]]);
        for kind in VertexKind::ALL {
            for (r, &v) in idx.kind_members(kind).iter().enumerate() {
                assert_eq!(idx.kind_rank(v) as usize, r);
                assert_eq!(idx.kind(v), kind);
            }
        }
    }

    #[test]
    fn freeze_is_deterministic_across_edge_interleavings() {
        // Same vertices, same edge set, same per-source relative order —
        // but globally interleaved differently (so edge ids differ). With
        // the (from, edge_id) sort both freezes must traverse identically.
        fn build(order: &[(usize, usize)]) -> (ProvGraph, Vec<VertexId>) {
            let mut g = ProvGraph::new();
            let d = g.add_entity("d");
            let e = g.add_entity("e");
            let t1 = g.add_activity("t1");
            let t2 = g.add_activity("t2");
            let vs = vec![d, e, t1, t2];
            for &(src, dst) in order {
                g.add_edge(EdgeKind::Used, vs[src], vs[dst]).unwrap();
            }
            (g, vs)
        }
        // t1 uses d then e; t2 uses d then e — interleaved two ways.
        let (g1, vs1) = build(&[(2, 0), (2, 1), (3, 0), (3, 1)]);
        let (g2, vs2) = build(&[(2, 0), (3, 0), (2, 1), (3, 1)]);
        assert_eq!(vs1, vs2);
        let (i1, i2) = (ProvIndex::build(&g1), ProvIndex::build(&g2));
        for &v in &vs1 {
            assert_eq!(i1.inputs_of(v), i2.inputs_of(v), "inputs of {v}");
            assert_eq!(i1.users_of(v), i2.users_of(v), "users of {v}");
        }
        assert_eq!(i1.inputs_of(vs1[2]), &[vs1[0], vs1[1]], "insertion order preserved");
        assert_eq!(i1.users_of(vs1[0]), &[vs1[2], vs1[3]]);
    }

    #[test]
    fn csr_edge_ids_are_ascending_per_vertex() {
        let (g, _) = chain();
        let idx = ProvIndex::build(&g);
        for kind in [EdgeKind::Used, EdgeKind::WasGeneratedBy, EdgeKind::WasDerivedFrom] {
            for dir in [Direction::Out, Direction::In] {
                let csr = idx.csr(kind, dir);
                for v in g.vertex_ids() {
                    let eids = csr.edge_ids(v);
                    assert!(
                        eids.windows(2).all(|w| w[0] < w[1]),
                        "{kind:?}/{dir:?} edge ids out of order at {v}: {eids:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn shared_snapshot_is_usable_after_graph_moves() {
        let (g, ids) = chain();
        let shared: SharedIndex = ProvIndex::build_shared(&g);
        let clone = Arc::clone(&shared);
        drop(g); // the snapshot owns everything it needs
        assert_eq!(shared.vertex_count(), 6);
        assert_eq!(clone.inputs_of(ids[1]), &[ids[0]]);
    }

    #[test]
    fn reverse_agent_csr_is_empty() {
        let (g, _) = chain();
        let idx = ProvIndex::build(&g);
        assert!(idx.csr(EdgeKind::WasAssociatedWith, Direction::In).is_empty());
        assert!(idx.csr(EdgeKind::WasAttributedTo, Direction::In).is_empty());
    }

    #[test]
    fn refresh_on_unchanged_graph_is_identity() {
        let (g, _) = chain();
        let built = ProvIndex::build(&g);
        assert!(built.is_fresh(&g));
        let mut refreshed = built.clone();
        refreshed.refresh_in_place(&g);
        assert_eq!(refreshed, built);
        assert_eq!(built.refreshed(&g), built);
    }

    #[test]
    fn refresh_matches_full_build_after_growth() {
        let (mut g, ids) = chain();
        let stale = ProvIndex::build(&g);
        // Grow: a new activity using OLD entities (so frozen rows must shift),
        // a new entity, agent edges, and a derivation to an old entity.
        let t3 = g.add_activity("t3");
        let w3 = g.add_entity("w3");
        let bob = g.add_agent("bob");
        g.add_edge(EdgeKind::Used, t3, ids[0]).unwrap(); // d gains a user
        g.add_edge(EdgeKind::Used, t3, ids[4]).unwrap(); // w2 gains a user
        g.add_edge(EdgeKind::WasGeneratedBy, w3, t3).unwrap();
        g.add_edge(EdgeKind::WasAssociatedWith, t3, bob).unwrap();
        g.add_edge(EdgeKind::WasAttributedTo, w3, bob).unwrap();
        g.add_edge(EdgeKind::WasDerivedFrom, w3, ids[2]).unwrap(); // w1
        assert!(!stale.is_fresh(&g));

        let full = ProvIndex::build(&g);
        let refreshed = stale.refreshed(&g);
        assert_eq!(refreshed, full, "refreshed snapshot must equal the reference build");
        // In-place refresh takes the same path.
        let mut in_place = stale.clone();
        in_place.refresh_in_place(&g);
        assert_eq!(in_place, full);
        // Spot-check a shifted frozen row: d's users are t1, t2, then t3.
        assert_eq!(refreshed.users_of(ids[0]), &[ids[1], ids[3], t3]);
        assert_eq!(refreshed.cursor(), g.cursor());
        assert!(refreshed.is_fresh(&g));
    }

    #[test]
    fn refresh_applies_repeatedly_across_batches() {
        let mut g = ProvGraph::new();
        let d = g.add_entity("d");
        let mut idx = ProvIndex::build(&g);
        let mut prev = d;
        for i in 0..5 {
            let t = g.add_activity(&format!("t{i}"));
            let w = g.add_entity(&format!("w{i}"));
            g.add_edge(EdgeKind::Used, t, prev).unwrap();
            g.add_edge(EdgeKind::Used, t, d).unwrap(); // seed row keeps growing
            g.add_edge(EdgeKind::WasGeneratedBy, w, t).unwrap();
            prev = w;
            idx.refresh_in_place(&g);
            assert_eq!(idx, ProvIndex::build(&g), "batch {i} produced a divergent snapshot");
        }
        // Round 0 used `d` twice (prev == d), later rounds once each.
        assert_eq!(idx.users_of(d).len(), 6);
    }

    /// Hand-corrupt one private field at a time and check that `validate`
    /// rejects the snapshot *naming the broken invariant* (ISSUE 7
    /// acceptance). In-module so the corruption can reach private fields.
    mod corruption {
        use super::*;

        fn built() -> ProvIndex {
            let (g, _) = chain();
            ProvIndex::build(&g)
        }

        #[track_caller]
        fn assert_names(idx: &ProvIndex, needle: &str) {
            let violation = idx.validate().expect_err("corruption must be caught");
            assert!(violation.contains(needle), "violation {violation:?} does not name {needle:?}");
        }

        #[test]
        fn pristine_snapshots_validate() {
            let (mut g, _) = chain();
            let mut idx = ProvIndex::build(&g);
            idx.validate().expect("reference build is valid");
            let t9 = g.add_activity("t9");
            g.add_edge(EdgeKind::Used, t9, g.vertex_by_name("d").unwrap()).unwrap();
            idx.refresh_in_place(&g);
            idx.validate().expect("refreshed snapshot is valid");
        }

        #[test]
        fn truncated_vertex_column() {
            let mut idx = built();
            idx.kinds.pop();
            assert_names(&idx, "vertex columns disagree");
        }

        #[test]
        fn cursor_vertex_watermark_drift() {
            let mut idx = built();
            idx.frozen.vertices -= 1;
            assert_names(&idx, "cursor records");
        }

        #[test]
        fn birth_order_swap() {
            let mut idx = built();
            idx.birth.swap(0, 1);
            assert_names(&idx, "births not strictly increasing");
        }

        #[test]
        fn kind_count_off_by_one() {
            let mut idx = built();
            idx.counts[VertexKind::Entity.as_index()] += 1;
            assert_names(&idx, "counts[Entity]");
        }

        #[test]
        fn kind_rank_bijection_break() {
            let mut idx = built();
            idx.kind_rank[0] = 2; // vertex 0 (entity d) actually sits at rank 0
            assert_names(&idx, "kind_rank");
        }

        #[test]
        fn kind_member_wrong_kind() {
            let mut idx = built();
            // Replace the first entity member with an activity vertex.
            idx.kind_members[VertexKind::Entity.as_index()][0] = VertexId::new(1);
            assert_names(&idx, "has kind");
        }

        #[test]
        fn edge_counter_imbalance() {
            let mut idx = built();
            idx.edge_counts[EdgeKind::Used.as_index()] += 1;
            assert_names(&idx, "edge_counts sum");
        }

        #[test]
        fn csr_length_vs_tally() {
            let mut idx = built();
            idx.used_out = Csr::default();
            assert_names(&idx, "used_out holds 0 entries");
        }

        #[test]
        fn csr_offset_table_truncated() {
            let mut idx = built();
            idx.gen_out.offsets.pop();
            assert_names(&idx, "gen_out: offset table");
        }

        #[test]
        fn csr_offsets_nonzero_start() {
            let mut idx = built();
            idx.used_in.offsets[0] = 1;
            assert_names(&idx, "used_in: offsets[0]");
        }

        #[test]
        fn csr_offsets_decrease() {
            let mut idx = built();
            // Bump a middle offset above its successor.
            let last = *idx.used_in.offsets.last().unwrap();
            idx.used_in.offsets[1] = last + 1;
            assert_names(&idx, "used_in: offsets decrease");
        }

        #[test]
        fn csr_adjacency_truncated() {
            let mut idx = built();
            // Popping a target trips the relation tally first; the parallel
            // edge-id column reaches the closing-offset invariant itself.
            idx.used_out.edge_ids.pop();
            assert_names(&idx, "used_out: closing offset");
        }

        #[test]
        fn csr_target_out_of_bounds() {
            let mut idx = built();
            idx.used_out.targets[0] = VertexId::new(99);
            assert_names(&idx, "used_out: target");
        }

        #[test]
        fn csr_row_edge_order_swap() {
            let mut idx = built();
            // t2's used row holds edge ids 2 then 3; swapping them breaks
            // the per-row strictly-ascending (insertion order) invariant.
            idx.used_out.edge_ids.swap(1, 2);
            assert_names(&idx, "strictly ascending");
        }
    }

    #[test]
    fn delta_cursor_tracks_appends_only() {
        let mut g = ProvGraph::new();
        let c0 = g.cursor();
        let e = g.add_entity("e");
        let a = g.add_activity("a");
        g.add_edge(EdgeKind::Used, a, e).unwrap();
        let delta = g.delta_since(c0);
        assert_eq!(delta.new_vertex_count(), 2);
        assert_eq!(delta.new_edge_count(), 1);
        assert!(!delta.is_empty());
        assert_eq!(delta.new_vertices().collect::<Vec<_>>(), vec![e, a]);
        assert_eq!(delta.new_edges().count(), 1);
        // Property writes do not move the cursor.
        let c1 = g.cursor();
        g.set_vprop(e, "tag", "raw");
        assert_eq!(g.cursor(), c1);
        assert!(g.delta_since(c1).is_empty());
        assert!(g.delta_since(c1).fraction() == 0.0);
        assert!(g.delta_since(c0).fraction() > 0.0);
    }
}
