//! Self-tests for the model checker: it must catch the classic bugs (with a
//! trace), pass the correct variants, prune redundant interleavings, and
//! explore deterministically.

use loom_lite::sync::atomic::{AtomicUsize, Ordering};
use loom_lite::sync::{Arc, Condvar, Mutex};
use loom_lite::{Builder, Report};

fn explore(f: impl Fn() + Send + Sync + 'static) -> Report {
    Builder::new().check(f)
}

#[test]
fn racy_load_then_store_is_caught() {
    // The textbook lost update: two threads do read-modify-write as two
    // separate atomic ops. Some schedule interleaves them and the final
    // count is 1, not 2 — the checker must find it.
    let err = Builder::new()
        .check_result(|| {
            let counter = Arc::new(AtomicUsize::new(0));
            let c2 = Arc::clone(&counter);
            let t = loom_lite::thread::spawn(move || {
                let v = c2.load(Ordering::SeqCst);
                c2.store(v + 1, Ordering::SeqCst);
            });
            let v = counter.load(Ordering::SeqCst);
            counter.store(v + 1, Ordering::SeqCst);
            t.join().unwrap();
            assert_eq!(counter.load(Ordering::SeqCst), 2, "lost update");
        })
        .expect_err("the lost update must be found");
    assert!(err.contains("lost update"), "failure names the assertion: {err}");
    assert!(err.contains("schedule trace"), "failure carries the schedule: {err}");
}

#[test]
fn atomic_rmw_counter_is_correct_and_exploration_completes() {
    let report = explore(|| {
        let counter = Arc::new(AtomicUsize::new(0));
        let c2 = Arc::clone(&counter);
        let t = loom_lite::thread::spawn(move || {
            c2.fetch_add(1, Ordering::SeqCst);
        });
        counter.fetch_add(1, Ordering::SeqCst);
        t.join().unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 2);
    });
    assert!(report.complete, "tiny model must exhaust: {report:?}");
    assert!(report.schedules >= 2, "both orders witnessed: {report:?}");
}

#[test]
fn mutex_guards_critical_section() {
    // The same lost update, but under a mutex: every schedule must agree.
    let report = explore(|| {
        let counter = Arc::new(Mutex::new(0u64));
        let c2 = Arc::clone(&counter);
        let t = loom_lite::thread::spawn(move || {
            let mut g = c2.lock().unwrap();
            *g += 1;
        });
        {
            let mut g = counter.lock().unwrap();
            *g += 1;
        }
        t.join().unwrap();
        assert_eq!(*counter.lock().unwrap(), 2);
    });
    assert!(report.complete);
    assert!(report.schedules >= 2);
}

#[test]
fn condvar_handoff_has_no_lost_wakeup() {
    // Correct predicate-loop handoff: the waiter re-checks the flag under
    // the lock, so notify-before-wait schedules still terminate.
    let report = explore(|| {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = loom_lite::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut ready = m.lock().unwrap();
            *ready = true;
            drop(ready);
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut ready = m.lock().unwrap();
        while !*ready {
            ready = cv.wait(ready).unwrap();
        }
        drop(ready);
        t.join().unwrap();
    });
    assert!(report.complete);
    assert!(report.schedules >= 2);
}

#[test]
fn naked_wait_without_predicate_deadlocks_and_is_reported() {
    // Bug: waiting without re-checking a predicate. In the schedule where
    // the notify commits before the wait, the waiter sleeps forever — a
    // lost wakeup, which the model reports as a deadlock with the trace.
    let err = Builder::new()
        .check_result(|| {
            let pair = Arc::new((Mutex::new(()), Condvar::new()));
            let p2 = Arc::clone(&pair);
            let t = loom_lite::thread::spawn(move || {
                let (_m, cv) = &*p2;
                cv.notify_all();
            });
            let (m, cv) = &*pair;
            let g = m.lock().unwrap();
            let g = cv.wait(g).unwrap();
            drop(g);
            t.join().unwrap();
        })
        .expect_err("the lost wakeup must be found");
    assert!(err.contains("deadlock"), "reported as deadlock: {err}");
    assert!(err.contains("waiting on cv"), "live summary shows the stuck waiter: {err}");
}

#[test]
fn timed_wait_fires_only_at_quiescence() {
    // The same naked wait, but timed: the quiescence timeout releases the
    // waiter instead of deadlocking — the safety-net semantics wait_timeout
    // relies on in the executor's parking loop.
    let report = explore(|| {
        let pair = Arc::new((Mutex::new(()), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = loom_lite::thread::spawn(move || {
            let (_m, cv) = &*p2;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let g = m.lock().unwrap();
        let (g, _res) = cv.wait_timeout(g, std::time::Duration::from_millis(10)).unwrap();
        drop(g);
        t.join().unwrap();
    });
    assert!(report.complete);
}

#[test]
fn sleep_sets_prune_independent_interleavings() {
    // Two threads touching two *different* atomics: all interleavings are
    // equivalent, so DPOR should explore far fewer than the naive 6-over-3
    // shuffle product — and prune at least one redundant execution.
    let report = explore(|| {
        let a = Arc::new(AtomicUsize::new(0));
        let b = Arc::new(AtomicUsize::new(0));
        let a2 = Arc::clone(&a);
        let t = loom_lite::thread::spawn(move || {
            a2.fetch_add(1, Ordering::SeqCst);
            a2.fetch_add(1, Ordering::SeqCst);
        });
        b.fetch_add(1, Ordering::SeqCst);
        b.fetch_add(1, Ordering::SeqCst);
        t.join().unwrap();
        assert_eq!(a.load(Ordering::SeqCst), 2);
        assert_eq!(b.load(Ordering::SeqCst), 2);
    });
    assert!(report.complete);
    assert!(report.pruned > 0, "independent ops must prune: {report:?}");
}

#[test]
fn preemption_bound_zero_shrinks_exploration() {
    let run = |bound: Option<usize>| {
        let mut b = Builder::new();
        b.preemption_bound = bound;
        b.check(|| {
            let c = Arc::new(AtomicUsize::new(0));
            let c2 = Arc::clone(&c);
            let t = loom_lite::thread::spawn(move || {
                c2.fetch_add(1, Ordering::SeqCst);
                c2.fetch_add(1, Ordering::SeqCst);
            });
            c.fetch_add(1, Ordering::SeqCst);
            c.fetch_add(1, Ordering::SeqCst);
            t.join().unwrap();
        })
    };
    let full = run(None);
    let bounded = run(Some(0));
    assert!(full.complete && bounded.complete);
    assert!(
        bounded.schedules < full.schedules,
        "bound 0 must explore strictly less: bounded {bounded:?} vs full {full:?}"
    );
}

#[test]
fn failure_replay_is_deterministic() {
    let check = || {
        Builder::new().check_result(|| {
            let counter = Arc::new(AtomicUsize::new(0));
            let c2 = Arc::clone(&counter);
            let t = loom_lite::thread::spawn(move || {
                let v = c2.load(Ordering::SeqCst);
                c2.store(v + 1, Ordering::SeqCst);
            });
            let v = counter.load(Ordering::SeqCst);
            counter.store(v + 1, Ordering::SeqCst);
            t.join().unwrap();
            assert_eq!(counter.load(Ordering::SeqCst), 2, "lost update");
        })
    };
    let first = check().expect_err("bug found");
    let second = check().expect_err("bug found again");
    assert_eq!(first, second, "same DFS order, same failing schedule, same trace");
}

#[test]
fn three_threads_exhaust() {
    let report = explore(|| {
        let c = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let c = Arc::clone(&c);
                loom_lite::thread::spawn(move || {
                    c.fetch_add(1, Ordering::SeqCst);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.load(Ordering::SeqCst), 3);
    });
    assert!(report.complete);
    assert!(report.schedules >= 6, "3! orders at minimum: {report:?}");
}
