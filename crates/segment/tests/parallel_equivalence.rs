//! Parallel-equivalence property tests (ISSUE 6): the BSP-round parallel
//! SimProvAlg must produce byte-identical `SimilarOutcome`s — sorted answer
//! vector and `work` counter — to the sequential pair-encoded loop, on
//! random `Pd`/`Sd` workloads, at every thread count, under all four
//! `(symmetric_prune × early_stop)` configurations and both backends.
//!
//! `work` equality is the strong half of the contract: it only holds if the
//! parallel merge enqueues every unique fact exactly once (idempotent
//! `insert_packed` collapsing cross-worker duplicates), because every
//! enqueued word is popped exactly once by both drains.

use proptest::prelude::*;
use prov_bitset::{CompressedBitmap, FixedBitSet};
use prov_model::{VertexId, VertexKind};
use prov_segment::{
    similar_alg, similar_alg_par_with_batch_min, AlgConfig, MaskedGraph, SimilarConstraint,
};
use prov_store::{ProvGraph, ProvIndex};
use prov_workload::{generate_pd, generate_sd, standard_query, PdParams, SdParams};

/// Thread counts exercised for every query; chunk counts control the
/// parallel shape, so these are meaningful even on a smaller pool.
const THREADS: [usize; 4] = [1, 2, 4, 8];

fn all_configs(constraint: Option<&ProvGraph>) -> Vec<AlgConfig> {
    let mut configs = Vec::new();
    for symmetric_prune in [false, true] {
        for early_stop in [false, true] {
            configs.push(AlgConfig {
                symmetric_prune,
                early_stop,
                constraint: constraint.map(|g| SimilarConstraint::same_command().compile(g)),
            });
        }
    }
    configs
}

fn assert_equivalent(
    view: &MaskedGraph<'_>,
    vsrc: &[VertexId],
    vdst: &[VertexId],
    cfg: &AlgConfig,
    label: &str,
) {
    let seq_bit = similar_alg::<FixedBitSet>(view, vsrc, vdst, cfg);
    let seq_cbm = similar_alg::<CompressedBitmap>(view, vsrc, vdst, cfg);
    // batch_min = 0 forces the chunked fan-out/merge path on every round,
    // even on graphs whose frontiers never reach the production threshold.
    for threads in THREADS {
        let par_bit =
            similar_alg_par_with_batch_min::<FixedBitSet>(view, vsrc, vdst, cfg, threads, 0);
        assert_eq!(par_bit.answer, seq_bit.answer, "bitset answer diverged: t={threads} {label}");
        assert_eq!(par_bit.stats.work, seq_bit.stats.work, "bitset work: t={threads} {label}");
        let par_cbm =
            similar_alg_par_with_batch_min::<CompressedBitmap>(view, vsrc, vdst, cfg, threads, 0);
        assert_eq!(par_cbm.answer, seq_cbm.answer, "cbm answer diverged: t={threads} {label}");
        assert_eq!(par_cbm.stats.work, seq_cbm.stats.work, "cbm work: t={threads} {label}");
    }
}

fn query_picks(
    graph: &ProvGraph,
    src_pick: prop::sample::Index,
    dst_pick: prop::sample::Index,
) -> (Vec<VertexId>, Vec<VertexId>) {
    let entities = graph.vertices_of_kind(VertexKind::Entity);
    (vec![*src_pick.get(entities)], vec![*dst_pick.get(entities)])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random `Pd` collaborative-project graphs, random entity queries.
    #[test]
    fn parallel_drain_matches_sequential_on_pd(
        n in 60usize..240,
        seed in 0u64..1_000,
        se in 1.1f64..2.1,
        lambda_in in 1.0f64..3.5,
        src_pick in any::<prop::sample::Index>(),
        dst_pick in any::<prop::sample::Index>(),
    ) {
        let params = PdParams { n, seed, se, lambda_in, ..PdParams::default() };
        let graph = generate_pd(&params);
        let idx = ProvIndex::build(&graph);
        let view = MaskedGraph::unmasked(&idx);
        let (vsrc, vdst) = query_picks(&graph, src_pick, dst_pick);
        for cfg in all_configs(None) {
            assert_equivalent(&view, &vsrc, &vdst, &cfg, &format!("Pd n={n} seed={seed} {cfg:?}"));
        }
    }

    /// The paper's standard first/last-entity query on `Pd`, plus the
    /// property-constrained variant (σ = same command).
    #[test]
    fn parallel_drain_matches_sequential_on_standard_and_constrained_queries(
        n in 80usize..200,
        seed in 0u64..1_000,
    ) {
        let graph = generate_pd(&PdParams { n, seed, ..PdParams::default() });
        let idx = ProvIndex::build(&graph);
        let view = MaskedGraph::unmasked(&idx);
        let (vsrc, vdst) = standard_query(&graph, 2);
        for cfg in all_configs(None).into_iter().chain(all_configs(Some(&graph))) {
            assert_equivalent(&view, &vsrc, &vdst, &cfg, &format!("Pd-std n={n} seed={seed} {cfg:?}"));
        }
    }

    /// Random `Sd` Markov-chain segment sets (the PgSum workload shape).
    #[test]
    fn parallel_drain_matches_sequential_on_sd(
        seed in 0u64..1_000,
        k in 2usize..6,
        segn in 5usize..15,
        src_pick in any::<prop::sample::Index>(),
        dst_pick in any::<prop::sample::Index>(),
    ) {
        let out = generate_sd(&SdParams { seed, k, n: segn, num_segments: 3, ..SdParams::default() });
        let idx = ProvIndex::build(&out.graph);
        let view = MaskedGraph::unmasked(&idx);
        let (vsrc, vdst) = query_picks(&out.graph, src_pick, dst_pick);
        for cfg in all_configs(None) {
            assert_equivalent(&view, &vsrc, &vdst, &cfg, &format!("Sd seed={seed} k={k} {cfg:?}"));
        }
    }
}
