//! `prov-core`: the user-facing crate of the reproduction.
//!
//! Ties the substrates together into the system of Fig. 1: a lifecycle
//! provenance database ([`ProvDb`]) with ingestion and the two query
//! operators, plus builders for the paper's running examples.
//!
//! ```
//! use prov_core::{ProvDb, ActivityRecord, OutputSpec};
//! use prov_segment::{PgSegQuery, PgSegOptions};
//!
//! let mut db = ProvDb::new();
//! let alice = db.add_agent("alice").unwrap();
//! let data = db.add_artifact_version("dataset", Some(alice)).unwrap();
//! let run = db.record_activity(ActivityRecord {
//!     command: "train".into(),
//!     agent: Some(alice),
//!     inputs: vec![data],
//!     outputs: vec![OutputSpec::named("weights").with("acc", 0.7)],
//!     props: vec![],
//! }).unwrap();
//! let seg = db.segment(
//!     PgSegQuery::between(vec![data], vec![run.outputs[0]]),
//!     &PgSegOptions::default(),
//! ).unwrap();
//! assert!(seg.contains(run.activity));
//! ```

pub mod example_graph;
pub mod lineage;
pub mod provdb;

pub use example_graph::{fig2, fig3, Example};
pub use lineage::{
    ancestry_edges, compile_lineage, lineage_over, lineage_over_par,
    lineage_over_par_with_frontier_min, lineage_reference, LineageBound, LineageDirection,
    PAR_FRONTIER_MIN,
};
pub use provdb::{
    ActivityOutcome, ActivityRecord, OutputSpec, ProvDb, SnapshotCounters, SnapshotPolicy,
};

// Durability surface (re-exported so service/bench layers need not name
// prov-store directly).
pub use prov_store::storage::{DurabilityCounters, DurabilityPolicy};

// Re-export the operator crates under one roof for downstream convenience.
pub use prov_bitset as bitset;
pub use prov_cfl as cfl;
pub use prov_model as model;
pub use prov_segment as segment;
pub use prov_store as store;
pub use prov_summary as summary;
pub use prov_workload as workload;
