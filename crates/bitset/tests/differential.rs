//! Differential property tests: every `FastSet` implementation must behave like
//! a reference `BTreeSet<u32>` under arbitrary operation sequences.

use proptest::prelude::*;
use prov_bitset::{CompressedBitmap, FastSet, FixedBitSet};
use std::collections::BTreeSet;

#[derive(Debug, Clone)]
enum Op {
    Insert(u32),
    Remove(u32),
    Contains(u32),
    Clear,
}

fn op_strategy(universe: u32) -> impl Strategy<Value = Op> {
    prop_oneof![
        8 => (0..universe).prop_map(Op::Insert),
        3 => (0..universe).prop_map(Op::Remove),
        3 => (0..universe).prop_map(Op::Contains),
        1 => Just(Op::Clear),
    ]
}

fn run_ops<S: FastSet>(mut set: S, ops: &[Op]) -> (S, BTreeSet<u32>) {
    let mut reference = BTreeSet::new();
    for op in ops {
        match *op {
            Op::Insert(x) => {
                assert_eq!(set.insert(x), reference.insert(x), "insert({x}) disagreed");
            }
            Op::Remove(x) => {
                assert_eq!(set.remove(x), reference.remove(&x), "remove({x}) disagreed");
            }
            Op::Contains(x) => {
                assert_eq!(set.contains(x), reference.contains(&x), "contains({x}) disagreed");
            }
            Op::Clear => {
                set.clear();
                reference.clear();
            }
        }
        assert_eq!(set.len(), reference.len(), "len disagreed after {op:?}");
    }
    (set, reference)
}

const UNIVERSE: u32 = 300_000; // spans multiple roaring containers

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn fixed_bitset_matches_reference(ops in proptest::collection::vec(op_strategy(UNIVERSE), 1..200)) {
        let (set, reference) = run_ops(FixedBitSet::with_universe(UNIVERSE as usize), &ops);
        prop_assert_eq!(set.to_vec(), reference.iter().copied().collect::<Vec<_>>());
    }

    #[test]
    fn compressed_bitmap_matches_reference(ops in proptest::collection::vec(op_strategy(UNIVERSE), 1..200)) {
        let (set, reference) = run_ops(CompressedBitmap::new(), &ops);
        prop_assert_eq!(set.to_vec(), reference.iter().copied().collect::<Vec<_>>());
    }

    #[test]
    fn collect_missing_agrees_between_backends(
        xs in proptest::collection::btree_set(0u32..UNIVERSE, 0..300),
        ys in proptest::collection::btree_set(0u32..UNIVERSE, 0..300),
    ) {
        let mut fixed_a = FixedBitSet::with_universe(UNIVERSE as usize);
        let mut fixed_b = FixedBitSet::with_universe(UNIVERSE as usize);
        let mut cbm_a = CompressedBitmap::new();
        let mut cbm_b = CompressedBitmap::new();
        for &x in &xs { fixed_a.insert(x); cbm_a.insert(x); }
        for &y in &ys { fixed_b.insert(y); cbm_b.insert(y); }

        let mut out_fixed = Vec::new();
        fixed_a.collect_missing(&fixed_b, &mut out_fixed);
        let mut out_cbm = Vec::new();
        cbm_a.collect_missing(&cbm_b, &mut out_cbm);

        let expect: Vec<u32> = ys.difference(&xs).copied().collect();
        prop_assert_eq!(&out_fixed, &expect);
        prop_assert_eq!(&out_cbm, &expect);
    }

    #[test]
    fn union_agrees_between_backends(
        xs in proptest::collection::btree_set(0u32..UNIVERSE, 0..200),
        ys in proptest::collection::btree_set(0u32..UNIVERSE, 0..200),
    ) {
        let mut fixed = FixedBitSet::with_universe(UNIVERSE as usize);
        let mut fixed_other = FixedBitSet::with_universe(UNIVERSE as usize);
        let mut cbm = CompressedBitmap::new();
        let mut cbm_other = CompressedBitmap::new();
        for &x in &xs { fixed.insert(x); cbm.insert(x); }
        for &y in &ys { fixed_other.insert(y); cbm_other.insert(y); }
        fixed.union_with(&fixed_other);
        cbm.union_with(&cbm_other);
        let expect: Vec<u32> = xs.union(&ys).copied().collect();
        prop_assert_eq!(fixed.to_vec(), expect.clone());
        prop_assert_eq!(cbm.to_vec(), expect);
    }
}
