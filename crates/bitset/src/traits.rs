//! The [`FastSet`] abstraction shared by all fact-table set representations.

/// A set of `u32` element ids over a bounded universe.
///
/// This is the interface the CFLR solvers (CflrB, SimProvAlg) are generic over.
/// The critical operations, matching the paper's description of the fast set
/// structure (Sec. III-B), are:
///
/// * `insert` — `O(1)` (amortized for the compressed variant),
/// * `contains` — `O(1)` for the bitset, `O(log)` for the compressed variant,
/// * `collect_missing` — the bulk set difference `other \ self` used by CflrB's
///   inner loop (`{u' ∈ Col(u,C) \ Col(v,A)}`), word-parallel where possible.
pub trait FastSet: Clone {
    /// Create an empty set able to hold ids in `0..universe`.
    fn with_universe(universe: usize) -> Self;

    /// Number of elements stored.
    fn len(&self) -> usize;

    /// True when no element is stored.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Membership test.
    fn contains(&self, x: u32) -> bool;

    /// Insert `x`; returns true when `x` was newly inserted.
    fn insert(&mut self, x: u32) -> bool;

    /// Remove `x`; returns true when `x` was present.
    fn remove(&mut self, x: u32) -> bool;

    /// Remove every element.
    fn clear(&mut self);

    /// Append every element of `other` that is *not* in `self` to `out`.
    ///
    /// This is CflrB's set-difference primitive. Implementations should work in
    /// bulk (word-at-a-time for bitmaps) rather than element-at-a-time.
    fn collect_missing(&self, other: &Self, out: &mut Vec<u32>);

    /// Insert every element of `other` into `self` (set union in place).
    fn union_with(&mut self, other: &Self);

    /// Batch insert: add every element of `xs`, appending the ones that were
    /// *newly* inserted to `out` (in `xs` order).
    ///
    /// This is the primitive behind SimProvAlg's pair-encoded worklist: a pop
    /// stages all candidate facts for one row, inserts them in one call, and
    /// enqueues exactly the fresh ones. Implementations may exploit locality
    /// in `xs` (e.g. the compressed variant caches the container of a run of
    /// nearby ids) — the default is element-wise [`FastSet::insert`].
    fn insert_returning_new(&mut self, xs: &[u32], out: &mut Vec<u32>) {
        for &x in xs {
            if self.insert(x) {
                out.push(x);
            }
        }
    }

    /// Visit every element in ascending order without allocating.
    ///
    /// Hot-loop alternative to the boxed [`FastSet::iter_elems`]: the
    /// compressed backend's `iter_elems` materializes a `Vec`, which is too
    /// expensive inside a worklist pop.
    fn for_each_elem(&self, f: &mut dyn FnMut(u32)) {
        for x in self.iter_elems() {
            f(x);
        }
    }

    /// Iterate the elements in ascending order.
    fn iter_elems(&self) -> Box<dyn Iterator<Item = u32> + '_>;

    /// Collect elements into a sorted `Vec` (test/debug convenience).
    fn to_vec(&self) -> Vec<u32> {
        self.iter_elems().collect()
    }

    /// Approximate heap footprint in bytes (used by the benchmark harness to
    /// report the memory trade-off between the bitset and compressed variants).
    fn heap_bytes(&self) -> usize;
}

/// A `HashSet`-backed [`FastSet`], the naive baseline representation.
#[derive(Debug, Clone, Default)]
pub struct HashFastSet {
    // lint-ok(std-collections): HashFastSet *is* the deliberate std-hasher baseline oracle.
    inner: std::collections::HashSet<u32>,
}

impl FastSet for HashFastSet {
    fn with_universe(_universe: usize) -> Self {
        // lint-ok(std-collections): the std baseline constructs its own backing set.
        Self { inner: std::collections::HashSet::new() }
    }

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn contains(&self, x: u32) -> bool {
        self.inner.contains(&x)
    }

    fn insert(&mut self, x: u32) -> bool {
        self.inner.insert(x)
    }

    fn remove(&mut self, x: u32) -> bool {
        self.inner.remove(&x)
    }

    fn clear(&mut self) {
        self.inner.clear();
    }

    fn collect_missing(&self, other: &Self, out: &mut Vec<u32>) {
        for &x in &other.inner {
            if !self.inner.contains(&x) {
                out.push(x);
            }
        }
    }

    fn union_with(&mut self, other: &Self) {
        self.inner.extend(other.inner.iter().copied());
    }

    fn iter_elems(&self) -> Box<dyn Iterator<Item = u32> + '_> {
        let mut v: Vec<u32> = self.inner.iter().copied().collect();
        v.sort_unstable();
        Box::new(v.into_iter())
    }

    fn heap_bytes(&self) -> usize {
        // Rough: ~8 bytes of table slot per element plus the key itself.
        self.inner.capacity() * (std::mem::size_of::<u32>() + 8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_fast_set_basic_ops() {
        let mut s = HashFastSet::with_universe(100);
        assert!(s.is_empty());
        assert!(s.insert(5));
        assert!(!s.insert(5));
        assert!(s.insert(99));
        assert!(s.contains(5));
        assert!(!s.contains(6));
        assert_eq!(s.len(), 2);
        assert_eq!(s.to_vec(), vec![5, 99]);
        assert!(s.remove(5));
        assert!(!s.remove(5));
        assert_eq!(s.len(), 1);
        s.clear();
        assert!(s.is_empty());
    }

    #[test]
    fn hash_fast_set_collect_missing() {
        let mut a = HashFastSet::with_universe(10);
        let mut b = HashFastSet::with_universe(10);
        for x in [1, 2, 3] {
            a.insert(x);
        }
        for x in [2, 3, 4, 5] {
            b.insert(x);
        }
        let mut out = Vec::new();
        a.collect_missing(&b, &mut out);
        out.sort_unstable();
        assert_eq!(out, vec![4, 5]);
    }

    #[test]
    fn hash_fast_set_batch_insert_and_for_each() {
        let mut s = HashFastSet::with_universe(100);
        s.insert(2);
        let mut fresh = Vec::new();
        s.insert_returning_new(&[1, 2, 3, 3], &mut fresh);
        assert_eq!(fresh, vec![1, 3], "only newly-inserted elements reported");
        assert_eq!(s.len(), 3);
        let mut seen = Vec::new();
        s.for_each_elem(&mut |x| seen.push(x));
        assert_eq!(seen, vec![1, 2, 3]);
    }

    #[test]
    fn hash_fast_set_union() {
        let mut a = HashFastSet::with_universe(10);
        let mut b = HashFastSet::with_universe(10);
        a.insert(1);
        b.insert(2);
        b.insert(1);
        a.union_with(&b);
        assert_eq!(a.to_vec(), vec![1, 2]);
    }
}
