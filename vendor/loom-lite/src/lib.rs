//! loom-lite — a schedule-exhaustive model checker for the executor shim.
//!
//! Offline stand-in for the `loom` crate (seventh shim in the `vendor/`
//! pattern): doubles for `Mutex`, `Condvar`, atomics, and `thread::spawn`
//! whose every operation is a yield point, plus a cooperative scheduler that
//! re-runs a closure under *every* interleaving of those yield points —
//! depth-first search with CHESS-style bounded preemption and DPOR-style
//! sleep-set pruning. Deadlocks (including lost wakeups), panics, and
//! assertion failures are reported with the exact schedule trace that
//! produced them, and the same trace replays deterministically.
//!
//! ```
//! use loom_lite::sync::atomic::{AtomicUsize, Ordering};
//! use loom_lite::sync::Arc;
//!
//! let report = loom_lite::model(|| {
//!     let counter = Arc::new(AtomicUsize::new(0));
//!     let c2 = Arc::clone(&counter);
//!     let t = loom_lite::thread::spawn(move || {
//!         c2.fetch_add(1, Ordering::SeqCst);
//!     });
//!     counter.fetch_add(1, Ordering::SeqCst);
//!     t.join().unwrap();
//!     assert_eq!(counter.load(Ordering::SeqCst), 2);
//! });
//! assert!(report.complete);
//! ```
//!
//! `vendor/rayon-core` routes its sync primitives through a facade that
//! swaps to these doubles under `--cfg prov_loom`; its `tests/loom.rs`
//! carries the executor's model-checked properties.

mod exec;
mod model;
pub mod sync;
pub mod thread;

pub use model::{model, Builder, Report};
