//! Benchmark harness for the Fig. 5 reproduction (see `DESIGN.md` §4).
//!
//! * [`harness`] — one function per subplot, printable as text tables;
//! * `src/bin/figure.rs` — CLI that regenerates any figure
//!   (`cargo run -p prov-bench --release --bin figure -- 5a`);
//! * `benches/` — Criterion micro-benchmarks over the same kernels.

pub mod harness;

pub use harness::{run_figure, FigureResult, Scale, Series, ALL_FIGURES};
