//! The seed recompute-from-scratch merge round discipline, frozen as a
//! reference.
//!
//! [`crate::merge::merge`] was rebuilt to maintain the quotient incrementally
//! (ISSUE 4): it projects the simulation preorder onto surviving
//! representatives after same-direction merge rounds instead of recomputing
//! both preorders from scratch before *every* round. This module preserves
//! the original discipline verbatim — its own `Dsu` (no union heuristic), its
//! own `densify`/`quotient` copies, and [`simulation_reference`] as the
//! preorder engine — so the differential property tests can assert the
//! rewrite produces the same quotient partition on every input, and the
//! `fig6` benchmark series has a fixed point to measure against.
//!
//! Do not optimize this module.

use crate::merge::MergeResult;
use crate::simulation::{SimDirection, SimRelation};
use crate::simulation_reference::simulation_reference;
use crate::union::{G0Node, G0};
use prov_store::hash::{FxHashMap, FxHashSet};

/// The seed union-find: no size/rank heuristic, unions in caller direction.
struct Dsu {
    parent: Vec<u32>,
}

impl Dsu {
    fn new(n: usize) -> Self {
        Dsu { parent: (0..n as u32).collect() }
    }

    fn find(&mut self, x: u32) -> u32 {
        let mut r = x;
        while self.parent[r as usize] != r {
            r = self.parent[r as usize];
        }
        let mut c = x;
        while self.parent[c as usize] != r {
            let next = self.parent[c as usize];
            self.parent[c as usize] = r;
            c = next;
        }
        r
    }

    fn union(&mut self, from: u32, into: u32) -> bool {
        let (a, b) = (self.find(from), self.find(into));
        if a == b {
            return false;
        }
        self.parent[a as usize] = b;
        true
    }
}

/// Seed copy of the quotient builder (dedup multi-edges).
fn quotient(g0: &G0, group_of: &[u32], group_count: usize) -> G0 {
    let mut nodes: Vec<Option<G0Node>> = vec![None; group_count];
    for (i, node) in g0.nodes.iter().enumerate() {
        let slot = group_of[i] as usize;
        if nodes[slot].is_none() {
            nodes[slot] =
                Some(G0Node { segment: node.segment, vertex: node.vertex, class: node.class });
        }
    }
    let nodes: Vec<G0Node> = nodes.into_iter().map(|n| n.expect("group non-empty")).collect();
    let n = nodes.len();
    let mut out_adj: Vec<Vec<(u8, u32)>> = vec![Vec::new(); n];
    let mut in_adj: Vec<Vec<(u8, u32)>> = vec![Vec::new(); n];
    let mut seen: FxHashSet<(u32, u8, u32)> = FxHashSet::default();
    for (i, adj) in g0.out_adj.iter().enumerate() {
        let s = group_of[i];
        for &(k, d) in adj {
            let d2 = group_of[d as usize];
            if seen.insert((s, k, d2)) {
                out_adj[s as usize].push((k, d2));
                in_adj[d2 as usize].push((k, s));
            }
        }
    }
    G0 {
        nodes,
        out_adj,
        in_adj,
        segment_count: g0.segment_count,
        class_labels: g0.class_labels.clone(),
        class_names: g0.class_names.clone(),
    }
}

/// Seed copy of the dense remap (first-appearance order).
fn densify(group_of: &mut [u32]) -> usize {
    let mut remap: FxHashMap<u32, u32> = FxHashMap::default();
    for g in group_of.iter_mut() {
        let next = remap.len() as u32;
        *g = *remap.entry(*g).or_insert(next);
    }
    remap.len()
}

fn merge_equiv_classes(g: &G0, rel: &SimRelation, dsu: &mut Dsu) -> bool {
    let mut merged = false;
    for v in 0..g.len() as u32 {
        for u in rel.above(v) {
            if u > v && rel.equiv(u, v) {
                merged |= dsu.union(u, v);
            }
        }
    }
    merged
}

fn merge_dominated(g: &G0, le_in: &SimRelation, le_out: &SimRelation, dsu: &mut Dsu) -> bool {
    let mut merged = false;
    for u in 0..g.len() as u32 {
        for v in le_in.above(u) {
            if v != u && le_out.le(u, v) {
                merged |= dsu.union(u, v);
                break; // one dominating target suffices for u
            }
        }
    }
    merged
}

/// Run the seed merge phase on `g0`: recompute the simulation preorders on
/// the current quotient before *every* round.
pub fn merge_reference(g0: &G0) -> MergeResult {
    let n0 = g0.len();
    let mut group_of: Vec<u32> = (0..n0 as u32).collect();
    let mut gcount = n0;
    let mut current = quotient(g0, &group_of, gcount);
    let mut rounds = 0usize;

    enum Round {
        InEquiv,
        OutEquiv,
        Dominated,
    }

    loop {
        rounds += 1;
        let mut any = false;
        for round in [Round::InEquiv, Round::OutEquiv, Round::Dominated] {
            let mut dsu = Dsu::new(current.len());
            let merged = match round {
                Round::InEquiv => {
                    let le_in = simulation_reference(&current, SimDirection::In);
                    merge_equiv_classes(&current, &le_in, &mut dsu)
                }
                Round::OutEquiv => {
                    let le_out = simulation_reference(&current, SimDirection::Out);
                    merge_equiv_classes(&current, &le_out, &mut dsu)
                }
                Round::Dominated => {
                    let le_in = simulation_reference(&current, SimDirection::In);
                    let le_out = simulation_reference(&current, SimDirection::Out);
                    merge_dominated(&current, &le_in, &le_out, &mut dsu)
                }
            };
            if merged {
                any = true;
                for g in group_of.iter_mut() {
                    *g = dsu.find(*g);
                }
                gcount = densify(&mut group_of);
                current = quotient(g0, &group_of, gcount);
            }
        }
        if !any {
            break;
        }
    }

    let mut members: Vec<Vec<u32>> = vec![Vec::new(); gcount];
    for (i, &g) in group_of.iter().enumerate() {
        members[g as usize].push(i as u32);
    }
    MergeResult { group_of, members, rounds }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregation::PropertyAggregation;
    use crate::segment_ref::SegmentRef;
    use crate::union::build_g0;
    use prov_model::EdgeKind;
    use prov_store::ProvGraph;

    #[test]
    fn reference_collapses_identical_segments() {
        let mut g = ProvGraph::new();
        let mut segs = Vec::new();
        for i in 0..2 {
            let d = g.add_entity(&format!("d{i}"));
            let t = g.add_activity("t");
            let w = g.add_entity(&format!("w{i}"));
            let e1 = g.add_edge(EdgeKind::Used, t, d).unwrap();
            let e2 = g.add_edge(EdgeKind::WasGeneratedBy, w, t).unwrap();
            segs.push(SegmentRef::new(vec![d, t, w], vec![e1, e2]));
        }
        let g0 = build_g0(&g, &segs, &PropertyAggregation::ignore_all(), 1);
        let res = merge_reference(&g0);
        assert_eq!(res.members.len(), 3);
        assert_eq!(res.group_of[0], res.group_of[3]);
        assert_eq!(res.group_of[1], res.group_of[4]);
        assert_eq!(res.group_of[2], res.group_of[5]);
    }
}
