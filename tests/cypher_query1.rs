//! Fidelity test for Sec. III-B's handcrafted Cypher query (Query 1).
//!
//! The paper expresses the `L(SimProv)` query in Cypher with two path
//! variables joined node-by-node. We reproduce that query plan through the
//! store's pattern-matching engine — materialize `p1` (destination→source
//! ancestry paths) and `p2` (all destination-anchored ancestry paths), join
//! on label sequences per anchor — and check that it computes exactly the
//! same answers as the four operator evaluators.

use prov_core::fig2;
use prov_model::{EdgeKind, VertexId, VertexKind};
use prov_segment::{evaluate_similarity, MaskedGraph, PgSegOptions};
use prov_store::{Budget, NodeSpec, PathPattern, PatternDir, RelSpec};
use prov_store::{ProvGraph, ProvIndex};

/// Execute the paper's Query 1 plan: enumerate both path variables and join.
fn cypher_query1(graph: &ProvGraph, vsrc: &[VertexId], vdst: &[VertexId]) -> Vec<VertexId> {
    let ancestry = [EdgeKind::Used, EdgeKind::WasGeneratedBy];

    // match p1 = (b:E)<-[:U|G*]-(e1:E) where id(b) in Vsrc, id(e1) in Vdst
    let p1_pattern =
        PathPattern::node(NodeSpec::of_kind(VertexKind::Entity).with_ids(vsrc.to_vec())).then(
            RelSpec::star(&ancestry, PatternDir::Backward, 0, RelSpec::UNBOUNDED),
            NodeSpec::of_kind(VertexKind::Entity).with_ids(vdst.to_vec()),
        );
    let p1 = prov_store::pattern::match_paths(graph, &p1_pattern, Budget::default());
    assert!(p1.is_complete());

    // match p2 = (c:E)<-[:U|G*]-(e2:E) where id(e2) in Vdst
    let p2_pattern =
        PathPattern::node(NodeSpec::of_kind(VertexKind::Entity).with_ids(vdst.to_vec())).then(
            RelSpec::star(&ancestry, PatternDir::Forward, 0, RelSpec::UNBOUNDED),
            NodeSpec::of_kind(VertexKind::Entity),
        );
    let p2 = prov_store::pattern::match_paths(graph, &p2_pattern, Budget::default());
    assert!(p2.is_complete());

    // Join: same anchor (the SimProv pivot) and equal label sequences. With
    // only U|G edges the node/edge label sequences of alternating ancestry
    // paths are determined by the hop count, so the extract(...) = extract(...)
    // comparison reduces to (anchor, length) equality.
    let accepted: prov_store::hash::FxHashSet<(VertexId, usize)> = p1
        .paths()
        .iter()
        .map(|p| (*p.vertices.last().expect("p1 ends at the anchor"), p.len()))
        .collect();
    let mut answer: Vec<VertexId> = p2
        .paths()
        .iter()
        .filter(|p| accepted.contains(&(p.vertices[0], p.len())))
        .map(|p| *p.vertices.last().expect("p2 non-empty"))
        .collect();
    answer.sort_unstable();
    answer.dedup();
    answer
}

#[test]
fn cypher_plan_matches_all_operator_evaluators() {
    let ex = fig2::build();
    let index = ProvIndex::build(&ex.graph);
    let view = MaskedGraph::unmasked(&index);

    let cases = [
        (vec![ex.v("dataset-v1")], vec![ex.v("weight-v2")]), // Query 1
        (vec![ex.v("dataset-v1")], vec![ex.v("log-v3")]),    // Query 2
        (vec![ex.v("model-v1")], vec![ex.v("weight-v3")]),
        (vec![ex.v("solver-v1")], vec![ex.v("weight-v1"), ex.v("weight-v3")]),
    ];
    for (vsrc, vdst) in cases {
        let cypher = cypher_query1(&ex.graph, &vsrc, &vdst);
        let operator = evaluate_similarity(&view, &vsrc, &vdst, &PgSegOptions::default());
        assert_eq!(
            cypher, operator.answer,
            "Cypher plan vs SimProvTst on src={vsrc:?} dst={vdst:?}"
        );
    }
}

#[test]
fn cypher_plan_materializes_exponentially_more_paths_than_needed() {
    // The point of Fig. 5(a): the path-variable plan *works* but holds every
    // ancestry path. On a chain of k diamonds there are 2^k full-length paths
    // (plus all prefixes) against O(k) vertices.
    let mut g = ProvGraph::new();
    let mut prev = g.add_entity("e0");
    let depth = 7;
    for i in 0..depth {
        let a1 = g.add_activity(&format!("a{i}x"));
        let a2 = g.add_activity(&format!("a{i}y"));
        let e = g.add_entity(&format!("e{}", i + 1));
        g.add_edge(EdgeKind::Used, a1, prev).unwrap();
        g.add_edge(EdgeKind::Used, a2, prev).unwrap();
        g.add_edge(EdgeKind::WasGeneratedBy, e, a1).unwrap();
        g.add_edge(EdgeKind::WasGeneratedBy, e, a2).unwrap();
        prev = e;
    }
    let p2_pattern = PathPattern::node(NodeSpec::of_kind(VertexKind::Entity).with_ids(vec![prev]))
        .then(
            RelSpec::star(
                &[EdgeKind::Used, EdgeKind::WasGeneratedBy],
                PatternDir::Forward,
                0,
                RelSpec::UNBOUNDED,
            ),
            NodeSpec::any(),
        );
    let p2 = prov_store::pattern::match_paths(&g, &p2_pattern, Budget::default());
    assert!(p2.is_complete());
    assert!(
        p2.paths().len() > (1 << depth) && p2.paths().len() > 4 * g.vertex_count(),
        "path variables blow up exponentially: {} paths over {} vertices",
        p2.paths().len(),
        g.vertex_count()
    );
    // The linear-time operator answers the same question without holding any
    // path at all.
    let index = ProvIndex::build(&g);
    let view = MaskedGraph::unmasked(&index);
    let src = VertexId::new(0);
    let out = evaluate_similarity(&view, &[src], &[prev], &PgSegOptions::default());
    assert!(out.answer.contains(&src));
}
