//! Frozen CSR snapshot ([`ProvIndex`]) for traversal-heavy query algorithms.
//!
//! The segmentation/summarization algorithms traverse `used`/`wasGeneratedBy`
//! adjacency millions of times. Rather than filtering the store's generic
//! adjacency lists on every hop, queries freeze the graph into a compressed
//! sparse row (CSR) snapshot with one array pair per (relationship, direction)
//! that the paper's grammars touch:
//!
//! * `inputs_of(a)`      — `U` out-edges: entities the activity used;
//! * `users_of(e)`       — `U` in-edges: activities that used the entity;
//! * `generators_of(e)`  — `G` out-edges: activities that generated the entity;
//! * `outputs_of(a)`     — `G` in-edges: entities the activity generated;
//! * agent edges (`S`, `A`) and derivations (`D`) for VC4 / boundary support.
//!
//! Each adjacency entry carries its [`EdgeId`] so boundary criteria can exclude
//! individual edges.

use crate::graph::ProvGraph;
use prov_model::{EdgeId, EdgeKind, VertexId, VertexKind};
use std::sync::Arc;

/// A shareable snapshot handle: interactive sessions and service registries
/// hold the frozen index by `Arc` so they can outlive the call stack that
/// built it (and so one freeze serves many concurrent readers).
pub type SharedIndex = Arc<ProvIndex>;

/// One CSR direction of one relationship type.
#[derive(Debug, Clone, Default)]
pub struct Csr {
    offsets: Vec<u32>,
    targets: Vec<VertexId>,
    edge_ids: Vec<EdgeId>,
}

impl Csr {
    fn build(n: usize, pairs: &mut [(VertexId, VertexId, EdgeId)]) -> Csr {
        // Sort by (from, edge_id): the edge-id tie-break pins neighbor order
        // to insertion order. A single-key unstable sort would leave the
        // order of a vertex's edges implementation-defined, making worklist
        // order — and every downstream statistic — nondeterministic across
        // toolchain versions.
        pairs.sort_unstable_by_key(|(from, _, eid)| (*from, *eid));
        let mut offsets = vec![0u32; n + 1];
        for (from, ..) in pairs.iter() {
            offsets[from.index() + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let targets = pairs.iter().map(|(_, to, _)| *to).collect();
        let edge_ids = pairs.iter().map(|(.., e)| *e).collect();
        Csr { offsets, targets, edge_ids }
    }

    /// Neighbors of `v`.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        let (lo, hi) = self.range(v);
        &self.targets[lo..hi]
    }

    /// Edge ids parallel to [`Csr::neighbors`].
    #[inline]
    pub fn edge_ids(&self, v: VertexId) -> &[EdgeId] {
        let (lo, hi) = self.range(v);
        &self.edge_ids[lo..hi]
    }

    /// `(neighbor, edge id)` pairs for `v`.
    #[inline]
    pub fn entries(&self, v: VertexId) -> impl Iterator<Item = (VertexId, EdgeId)> + '_ {
        let (lo, hi) = self.range(v);
        self.targets[lo..hi].iter().copied().zip(self.edge_ids[lo..hi].iter().copied())
    }

    /// Degree of `v` in this relation/direction.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        let (lo, hi) = self.range(v);
        hi - lo
    }

    /// Total number of adjacency entries.
    pub fn len(&self) -> usize {
        self.targets.len()
    }

    /// True when the relation is empty.
    pub fn is_empty(&self) -> bool {
        self.targets.is_empty()
    }

    #[inline]
    fn range(&self, v: VertexId) -> (usize, usize) {
        if v.index() + 1 >= self.offsets.len() {
            return (0, 0); // default-constructed (empty) CSR
        }
        (self.offsets[v.index()] as usize, self.offsets[v.index() + 1] as usize)
    }
}

/// Immutable CSR snapshot of a [`ProvGraph`], specialized by relationship type.
#[derive(Debug, Clone)]
pub struct ProvIndex {
    n: usize,
    kinds: Vec<VertexKind>,
    birth: Vec<u64>,
    /// Rank of each vertex within its kind (dense per-kind id).
    kind_rank: Vec<u32>,
    /// Members of each kind in creation order (inverse of `kind_rank`).
    kind_members: [Vec<VertexId>; 3],
    used_out: Csr,  // activity -> entities it used
    used_in: Csr,   // entity   -> activities that used it
    gen_out: Csr,   // entity   -> activities that generated it
    gen_in: Csr,    // activity -> entities it generated
    assoc_out: Csr, // activity -> agents
    attr_out: Csr,  // entity   -> agents
    deriv_out: Csr, // entity   -> entities it was derived from
    deriv_in: Csr,  // entity   -> entities derived from it
    counts: [usize; 3],
    edge_counts: [usize; 5],
}

impl ProvIndex {
    /// Freeze `graph` into a snapshot.
    pub fn build(graph: &ProvGraph) -> ProvIndex {
        let n = graph.vertex_count();
        let mut used: Vec<(VertexId, VertexId, EdgeId)> = Vec::new();
        let mut used_rev = Vec::new();
        let mut gen = Vec::new();
        let mut gen_rev = Vec::new();
        let mut assoc = Vec::new();
        let mut attr = Vec::new();
        let mut deriv = Vec::new();
        let mut deriv_rev = Vec::new();
        let mut edge_counts = [0usize; 5];
        for eid in graph.edge_ids() {
            let e = graph.edge(eid);
            edge_counts[e.kind.as_index()] += 1;
            match e.kind {
                EdgeKind::Used => {
                    used.push((e.src, e.dst, eid));
                    used_rev.push((e.dst, e.src, eid));
                }
                EdgeKind::WasGeneratedBy => {
                    gen.push((e.src, e.dst, eid));
                    gen_rev.push((e.dst, e.src, eid));
                }
                EdgeKind::WasAssociatedWith => assoc.push((e.src, e.dst, eid)),
                EdgeKind::WasAttributedTo => attr.push((e.src, e.dst, eid)),
                EdgeKind::WasDerivedFrom => {
                    deriv.push((e.src, e.dst, eid));
                    deriv_rev.push((e.dst, e.src, eid));
                }
            }
        }
        let kinds: Vec<VertexKind> = graph.vertex_ids().map(|v| graph.vertex_kind(v)).collect();
        let mut kind_rank = vec![0u32; n];
        let mut kind_members: [Vec<VertexId>; 3] = Default::default();
        for (i, &k) in kinds.iter().enumerate() {
            let members = &mut kind_members[k.as_index()];
            kind_rank[i] = members.len() as u32;
            members.push(VertexId::new(i as u32));
        }
        ProvIndex {
            n,
            kinds,
            birth: graph.vertex_ids().map(|v| graph.vertex(v).birth).collect(),
            kind_rank,
            kind_members,
            used_out: Csr::build(n, &mut used),
            used_in: Csr::build(n, &mut used_rev),
            gen_out: Csr::build(n, &mut gen),
            gen_in: Csr::build(n, &mut gen_rev),
            assoc_out: Csr::build(n, &mut assoc),
            attr_out: Csr::build(n, &mut attr),
            deriv_out: Csr::build(n, &mut deriv),
            deriv_in: Csr::build(n, &mut deriv_rev),
            counts: [
                graph.kind_count(VertexKind::Entity),
                graph.kind_count(VertexKind::Activity),
                graph.kind_count(VertexKind::Agent),
            ],
            edge_counts,
        }
    }

    /// Freeze `graph` into a reference-counted snapshot ready to be stored in
    /// a session registry ([`SharedIndex`]).
    pub fn build_shared(graph: &ProvGraph) -> SharedIndex {
        Arc::new(ProvIndex::build(graph))
    }

    /// Number of vertices.
    #[inline]
    pub fn vertex_count(&self) -> usize {
        self.n
    }

    /// `λv(v)`.
    #[inline]
    pub fn kind(&self, v: VertexId) -> VertexKind {
        self.kinds[v.index()]
    }

    /// Logical creation time ("order of being").
    #[inline]
    pub fn birth(&self, v: VertexId) -> u64 {
        self.birth[v.index()]
    }

    /// Count of vertices of `kind`.
    pub fn kind_count(&self, kind: VertexKind) -> usize {
        self.counts[kind.as_index()]
    }

    /// Dense rank of `v` within its kind (0-based, creation order). Used as the
    /// universe for per-kind fact bitmaps in SimProvAlg.
    #[inline]
    pub fn kind_rank(&self, v: VertexId) -> u32 {
        self.kind_rank[v.index()]
    }

    /// Members of `kind` in creation order; `kind_members(k)[kind_rank(v)] == v`.
    pub fn kind_members(&self, kind: VertexKind) -> &[VertexId] {
        &self.kind_members[kind.as_index()]
    }

    /// Count of edges of `kind`.
    pub fn edge_kind_count(&self, kind: EdgeKind) -> usize {
        self.edge_counts[kind.as_index()]
    }

    /// Entities used by activity `a` (`U` out-edges).
    #[inline]
    pub fn inputs_of(&self, a: VertexId) -> &[VertexId] {
        self.used_out.neighbors(a)
    }

    /// Activities that used entity `e` (`U` in-edges).
    #[inline]
    pub fn users_of(&self, e: VertexId) -> &[VertexId] {
        self.used_in.neighbors(e)
    }

    /// Activities that generated entity `e` (`G` out-edges).
    #[inline]
    pub fn generators_of(&self, e: VertexId) -> &[VertexId] {
        self.gen_out.neighbors(e)
    }

    /// Entities generated by activity `a` (`G` in-edges).
    #[inline]
    pub fn outputs_of(&self, a: VertexId) -> &[VertexId] {
        self.gen_in.neighbors(a)
    }

    /// Agents associated with activity `a` (`S` edges).
    #[inline]
    pub fn agents_of_activity(&self, a: VertexId) -> &[VertexId] {
        self.assoc_out.neighbors(a)
    }

    /// Agents an entity is attributed to (`A` edges).
    #[inline]
    pub fn agents_of_entity(&self, e: VertexId) -> &[VertexId] {
        self.attr_out.neighbors(e)
    }

    /// Entities `e` was derived from (`D` out-edges).
    #[inline]
    pub fn derived_from(&self, e: VertexId) -> &[VertexId] {
        self.deriv_out.neighbors(e)
    }

    /// Entities derived from `e` (`D` in-edges).
    #[inline]
    pub fn derivations_of(&self, e: VertexId) -> &[VertexId] {
        self.deriv_in.neighbors(e)
    }

    /// Raw CSR accessors (with edge ids) for boundary-aware traversal.
    pub fn csr(&self, kind: EdgeKind, direction: Direction) -> &Csr {
        match (kind, direction) {
            (EdgeKind::Used, Direction::Out) => &self.used_out,
            (EdgeKind::Used, Direction::In) => &self.used_in,
            (EdgeKind::WasGeneratedBy, Direction::Out) => &self.gen_out,
            (EdgeKind::WasGeneratedBy, Direction::In) => &self.gen_in,
            (EdgeKind::WasAssociatedWith, Direction::Out) => &self.assoc_out,
            (EdgeKind::WasAttributedTo, Direction::Out) => &self.attr_out,
            (EdgeKind::WasDerivedFrom, Direction::Out) => &self.deriv_out,
            (EdgeKind::WasDerivedFrom, Direction::In) => &self.deriv_in,
            // S/A edges are only stored forward: agents have no outgoing edges.
            (EdgeKind::WasAssociatedWith | EdgeKind::WasAttributedTo, Direction::In) => {
                static EMPTY: std::sync::OnceLock<Csr> = std::sync::OnceLock::new();
                EMPTY.get_or_init(Csr::default)
            }
        }
    }
}

/// Traversal direction relative to stored edge orientation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Follow edges as stored (src → dst).
    Out,
    /// Follow edges reversed (dst → src).
    In,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::ProvGraph;

    /// Two chained training steps sharing a dataset.
    fn chain() -> (ProvGraph, Vec<VertexId>) {
        let mut g = ProvGraph::new();
        let d = g.add_entity("d");
        let t1 = g.add_activity("t1");
        let w1 = g.add_entity("w1");
        let t2 = g.add_activity("t2");
        let w2 = g.add_entity("w2");
        let alice = g.add_agent("alice");
        g.add_edge(EdgeKind::Used, t1, d).unwrap();
        g.add_edge(EdgeKind::WasGeneratedBy, w1, t1).unwrap();
        g.add_edge(EdgeKind::Used, t2, d).unwrap();
        g.add_edge(EdgeKind::Used, t2, w1).unwrap();
        g.add_edge(EdgeKind::WasGeneratedBy, w2, t2).unwrap();
        g.add_edge(EdgeKind::WasAssociatedWith, t1, alice).unwrap();
        g.add_edge(EdgeKind::WasAttributedTo, d, alice).unwrap();
        g.add_edge(EdgeKind::WasDerivedFrom, w2, w1).unwrap();
        (g, vec![d, t1, w1, t2, w2, alice])
    }

    #[test]
    fn typed_adjacency_matches_graph() {
        let (g, ids) = chain();
        let idx = ProvIndex::build(&g);
        let (d, t1, w1, t2, w2, alice) = (ids[0], ids[1], ids[2], ids[3], ids[4], ids[5]);

        assert_eq!(idx.inputs_of(t1), &[d]);
        let mut t2_in = idx.inputs_of(t2).to_vec();
        t2_in.sort();
        assert_eq!(t2_in, vec![d, w1]);
        let mut d_users = idx.users_of(d).to_vec();
        d_users.sort();
        assert_eq!(d_users, vec![t1, t2]);
        assert_eq!(idx.generators_of(w2), &[t2]);
        assert_eq!(idx.outputs_of(t1), &[w1]);
        assert_eq!(idx.agents_of_activity(t1), &[alice]);
        assert_eq!(idx.agents_of_entity(d), &[alice]);
        assert_eq!(idx.derived_from(w2), &[w1]);
        assert_eq!(idx.derivations_of(w1), &[w2]);
        assert!(idx.inputs_of(d).is_empty()); // entities use nothing
    }

    #[test]
    fn kinds_births_counts_survive_freeze() {
        let (g, ids) = chain();
        let idx = ProvIndex::build(&g);
        assert_eq!(idx.vertex_count(), 6);
        assert_eq!(idx.kind(ids[0]), VertexKind::Entity);
        assert_eq!(idx.kind(ids[1]), VertexKind::Activity);
        assert_eq!(idx.kind(ids[5]), VertexKind::Agent);
        assert_eq!(idx.kind_count(VertexKind::Entity), 3);
        assert_eq!(idx.kind_count(VertexKind::Activity), 2);
        assert_eq!(idx.edge_kind_count(EdgeKind::Used), 3);
        assert_eq!(idx.edge_kind_count(EdgeKind::WasGeneratedBy), 2);
        assert!(idx.birth(ids[0]) < idx.birth(ids[5]));
    }

    #[test]
    fn csr_edge_ids_align_with_neighbors() {
        let (g, ids) = chain();
        let idx = ProvIndex::build(&g);
        let t2 = ids[3];
        let csr = idx.csr(EdgeKind::Used, Direction::Out);
        for (nbr, eid) in csr.entries(t2) {
            let e = g.edge(eid);
            assert_eq!(e.kind, EdgeKind::Used);
            assert_eq!(e.src, t2);
            assert_eq!(e.dst, nbr);
        }
        assert_eq!(csr.degree(t2), 2);
    }

    #[test]
    fn kind_ranks_are_dense_per_kind() {
        let (g, ids) = chain();
        let idx = ProvIndex::build(&g);
        // Entities d, w1, w2 were created in that order.
        assert_eq!(idx.kind_rank(ids[0]), 0); // d
        assert_eq!(idx.kind_rank(ids[2]), 1); // w1
        assert_eq!(idx.kind_rank(ids[4]), 2); // w2
        assert_eq!(idx.kind_rank(ids[1]), 0); // t1 first activity
        assert_eq!(idx.kind_rank(ids[3]), 1); // t2
        assert_eq!(idx.kind_members(VertexKind::Entity), &[ids[0], ids[2], ids[4]]);
        for kind in VertexKind::ALL {
            for (r, &v) in idx.kind_members(kind).iter().enumerate() {
                assert_eq!(idx.kind_rank(v) as usize, r);
                assert_eq!(idx.kind(v), kind);
            }
        }
    }

    #[test]
    fn freeze_is_deterministic_across_edge_interleavings() {
        // Same vertices, same edge set, same per-source relative order —
        // but globally interleaved differently (so edge ids differ). With
        // the (from, edge_id) sort both freezes must traverse identically.
        fn build(order: &[(usize, usize)]) -> (ProvGraph, Vec<VertexId>) {
            let mut g = ProvGraph::new();
            let d = g.add_entity("d");
            let e = g.add_entity("e");
            let t1 = g.add_activity("t1");
            let t2 = g.add_activity("t2");
            let vs = vec![d, e, t1, t2];
            for &(src, dst) in order {
                g.add_edge(EdgeKind::Used, vs[src], vs[dst]).unwrap();
            }
            (g, vs)
        }
        // t1 uses d then e; t2 uses d then e — interleaved two ways.
        let (g1, vs1) = build(&[(2, 0), (2, 1), (3, 0), (3, 1)]);
        let (g2, vs2) = build(&[(2, 0), (3, 0), (2, 1), (3, 1)]);
        assert_eq!(vs1, vs2);
        let (i1, i2) = (ProvIndex::build(&g1), ProvIndex::build(&g2));
        for &v in &vs1 {
            assert_eq!(i1.inputs_of(v), i2.inputs_of(v), "inputs of {v}");
            assert_eq!(i1.users_of(v), i2.users_of(v), "users of {v}");
        }
        assert_eq!(i1.inputs_of(vs1[2]), &[vs1[0], vs1[1]], "insertion order preserved");
        assert_eq!(i1.users_of(vs1[0]), &[vs1[2], vs1[3]]);
    }

    #[test]
    fn csr_edge_ids_are_ascending_per_vertex() {
        let (g, _) = chain();
        let idx = ProvIndex::build(&g);
        for kind in [EdgeKind::Used, EdgeKind::WasGeneratedBy, EdgeKind::WasDerivedFrom] {
            for dir in [Direction::Out, Direction::In] {
                let csr = idx.csr(kind, dir);
                for v in g.vertex_ids() {
                    let eids = csr.edge_ids(v);
                    assert!(
                        eids.windows(2).all(|w| w[0] < w[1]),
                        "{kind:?}/{dir:?} edge ids out of order at {v}: {eids:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn shared_snapshot_is_usable_after_graph_moves() {
        let (g, ids) = chain();
        let shared: SharedIndex = ProvIndex::build_shared(&g);
        let clone = Arc::clone(&shared);
        drop(g); // the snapshot owns everything it needs
        assert_eq!(shared.vertex_count(), 6);
        assert_eq!(clone.inputs_of(ids[1]), &[ids[0]]);
    }

    #[test]
    fn reverse_agent_csr_is_empty() {
        let (g, _) = chain();
        let idx = ProvIndex::build(&g);
        assert!(idx.csr(EdgeKind::WasAssociatedWith, Direction::In).is_empty());
        assert!(idx.csr(EdgeKind::WasAttributedTo, Direction::In).is_empty());
    }
}
