//! Worklist-equivalence property tests (ISSUE 3 acceptance): the
//! pair-encoded SimProvAlg loop must derive byte-identical `SimilarOutcome`
//! fact tables to the seed `VecDeque` implementation on random `Pd`/`Sd`
//! workloads, under all four `(symmetric_prune × early_stop)` configurations
//! and both bitset backends.
//!
//! "Byte-identical" here means the observable outcome: the sorted answer
//! vector, the absent `vc2`, and the `work` counter (pops + derived facts) —
//! the latter only matches if both loops insert exactly the same fact sets,
//! because every inserted fact is popped exactly once.

use proptest::prelude::*;
use prov_bitset::{CompressedBitmap, FixedBitSet};
use prov_model::{VertexId, VertexKind};
use prov_segment::{similar_alg, similar_alg_reference, AlgConfig, MaskedGraph, SimilarConstraint};
use prov_store::{ProvGraph, ProvIndex};
use prov_workload::{generate_pd, generate_sd, standard_query, PdParams, SdParams};

/// All four optimization toggles of the Fig. 5(d)-style ablation.
fn all_configs(constraint: Option<&ProvGraph>) -> Vec<AlgConfig> {
    let mut configs = Vec::new();
    for symmetric_prune in [false, true] {
        for early_stop in [false, true] {
            configs.push(AlgConfig {
                symmetric_prune,
                early_stop,
                constraint: constraint.map(|g| SimilarConstraint::same_command().compile(g)),
            });
        }
    }
    configs
}

/// Compare new vs seed loop on both backends for one query under `cfg`.
fn assert_equivalent(
    view: &MaskedGraph<'_>,
    vsrc: &[VertexId],
    vdst: &[VertexId],
    cfg: &AlgConfig,
    label: &str,
) {
    let new_bit = similar_alg::<FixedBitSet>(view, vsrc, vdst, cfg);
    let old_bit = similar_alg_reference::<FixedBitSet>(view, vsrc, vdst, cfg);
    assert_eq!(new_bit.answer, old_bit.answer, "bitset answer diverged: {label}");
    assert!(new_bit.vc2.is_none() && old_bit.vc2.is_none());
    assert_eq!(new_bit.stats.work, old_bit.stats.work, "bitset work diverged: {label}");

    let new_cbm = similar_alg::<CompressedBitmap>(view, vsrc, vdst, cfg);
    let old_cbm = similar_alg_reference::<CompressedBitmap>(view, vsrc, vdst, cfg);
    assert_eq!(new_cbm.answer, old_cbm.answer, "cbm answer diverged: {label}");
    assert_eq!(new_cbm.stats.work, old_cbm.stats.work, "cbm work diverged: {label}");

    assert_eq!(new_bit.answer, new_cbm.answer, "backends diverged: {label}");
}

fn query_picks(
    graph: &ProvGraph,
    src_pick: prop::sample::Index,
    dst_pick: prop::sample::Index,
) -> (Vec<VertexId>, Vec<VertexId>) {
    let entities = graph.vertices_of_kind(VertexKind::Entity);
    (vec![*src_pick.get(entities)], vec![*dst_pick.get(entities)])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random `Pd` collaborative-project graphs, random entity queries.
    #[test]
    fn pair_encoded_loop_matches_seed_on_pd(
        n in 60usize..240,
        seed in 0u64..1_000,
        se in 1.1f64..2.1,
        lambda_in in 1.0f64..3.5,
        src_pick in any::<prop::sample::Index>(),
        dst_pick in any::<prop::sample::Index>(),
    ) {
        let params = PdParams { n, seed, se, lambda_in, ..PdParams::default() };
        let graph = generate_pd(&params);
        let idx = ProvIndex::build(&graph);
        let view = MaskedGraph::unmasked(&idx);
        let (vsrc, vdst) = query_picks(&graph, src_pick, dst_pick);
        for cfg in all_configs(None) {
            assert_equivalent(&view, &vsrc, &vdst, &cfg, &format!("Pd n={n} seed={seed} {cfg:?}"));
        }
    }

    /// The paper's standard first/last-entity query on `Pd`, plus the
    /// property-constrained variant (σ = same command).
    #[test]
    fn pair_encoded_loop_matches_seed_on_standard_and_constrained_queries(
        n in 80usize..200,
        seed in 0u64..1_000,
    ) {
        let graph = generate_pd(&PdParams { n, seed, ..PdParams::default() });
        let idx = ProvIndex::build(&graph);
        let view = MaskedGraph::unmasked(&idx);
        let (vsrc, vdst) = standard_query(&graph, 2);
        for cfg in all_configs(None).into_iter().chain(all_configs(Some(&graph))) {
            assert_equivalent(&view, &vsrc, &vdst, &cfg, &format!("Pd-std n={n} seed={seed} {cfg:?}"));
        }
    }

    /// Random `Sd` Markov-chain segment sets (the PgSum workload shape).
    #[test]
    fn pair_encoded_loop_matches_seed_on_sd(
        seed in 0u64..1_000,
        k in 2usize..6,
        segn in 5usize..15,
        src_pick in any::<prop::sample::Index>(),
        dst_pick in any::<prop::sample::Index>(),
    ) {
        let out = generate_sd(&SdParams { seed, k, n: segn, num_segments: 3, ..SdParams::default() });
        let idx = ProvIndex::build(&out.graph);
        let view = MaskedGraph::unmasked(&idx);
        let (vsrc, vdst) = query_picks(&out.graph, src_pick, dst_pick);
        for cfg in all_configs(None) {
            assert_equivalent(&view, &vsrc, &vdst, &cfg, &format!("Sd seed={seed} k={k} {cfg:?}"));
        }
    }
}
