//! Property aggregation `K` (Sec. IV-A.1).
//!
//! `K = (KE, KA, KU)` lists, per vertex type, the property keys that remain
//! *visible* during summarization; every other property is discarded before
//! vertices are compared. An empty list for a type means all its vertices of
//! equal kind look identical (e.g. `KU = ∅` folds Alice and Bob into one
//! abstract team member).

use prov_model::{PropValue, VertexId, VertexKind};
use prov_store::ProvGraph;

/// The property aggregation choice of a PgSum query.
#[derive(Debug, Clone, Default)]
pub struct PropertyAggregation {
    /// Visible keys for entities (`KE`).
    pub entity_keys: Vec<String>,
    /// Visible keys for activities (`KA`).
    pub activity_keys: Vec<String>,
    /// Visible keys for agents (`KU`).
    pub agent_keys: Vec<String>,
}

impl PropertyAggregation {
    /// Ignore every property: vertices compare by kind (and provenance type)
    /// only.
    pub fn ignore_all() -> Self {
        Self::default()
    }

    /// The Fig. 2(e) query: entities by `filename`, activities by `command`,
    /// agents anonymous.
    pub fn fig2e() -> Self {
        PropertyAggregation {
            entity_keys: vec!["filename".into()],
            activity_keys: vec!["command".into()],
            agent_keys: vec![],
        }
    }

    /// Builder: set the visible keys of one vertex kind.
    pub fn with_keys(mut self, kind: VertexKind, keys: &[&str]) -> Self {
        let slot = match kind {
            VertexKind::Entity => &mut self.entity_keys,
            VertexKind::Activity => &mut self.activity_keys,
            VertexKind::Agent => &mut self.agent_keys,
        };
        *slot = keys.iter().map(|s| s.to_string()).collect();
        self
    }

    /// Visible keys for `kind`.
    pub fn keys_for(&self, kind: VertexKind) -> &[String] {
        match kind {
            VertexKind::Entity => &self.entity_keys,
            VertexKind::Activity => &self.activity_keys,
            VertexKind::Agent => &self.agent_keys,
        }
    }

    /// The *aggregate label* of a vertex: its kind plus the values of the
    /// visible keys (missing properties stay `None`, preserving partiality).
    pub fn label(&self, graph: &ProvGraph, v: VertexId) -> AggLabel {
        let kind = graph.vertex_kind(v);
        let values = self.keys_for(kind).iter().map(|k| graph.vprop(v, k).cloned()).collect();
        AggLabel { kind, values }
    }
}

/// A vertex's visible identity under `K`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct AggLabel {
    /// Vertex kind (`λv`).
    pub kind: VertexKind,
    /// Values of the visible keys, in `K` order.
    pub values: Vec<Option<PropValue>>,
}

impl AggLabel {
    /// Human-readable rendering (used in Psg output), e.g. `train(-gpu)`.
    pub fn render(&self, graph_name: Option<&str>) -> String {
        let vals: Vec<String> = self
            .values
            .iter()
            .map(|v| v.as_ref().map_or("∅".to_string(), |p| p.to_string()))
            .collect();
        let base = graph_name.unwrap_or(match self.kind {
            VertexKind::Entity => "entity",
            VertexKind::Activity => "activity",
            VertexKind::Agent => "agent",
        });
        if vals.is_empty() {
            base.to_string()
        } else {
            format!("{base}({})", vals.join(","))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prov_model::EdgeKind;

    fn sample() -> (ProvGraph, VertexId, VertexId, VertexId, VertexId) {
        let mut g = ProvGraph::new();
        let t1 = g.add_activity("train-v1");
        let t2 = g.add_activity("train-v2");
        let d = g.add_entity("data");
        let a = g.add_agent("alice");
        g.set_vprop(t1, "command", "train");
        g.set_vprop(t2, "command", "train");
        g.set_vprop(t1, "lr", 0.1);
        g.set_vprop(t2, "lr", 0.01);
        g.add_edge(EdgeKind::Used, t1, d).unwrap();
        (g, t1, t2, d, a)
    }

    #[test]
    fn aggregation_hides_invisible_keys() {
        let (g, t1, t2, ..) = sample();
        let k = PropertyAggregation::ignore_all().with_keys(VertexKind::Activity, &["command"]);
        // Different lr, same command: equal labels.
        assert_eq!(k.label(&g, t1), k.label(&g, t2));
        // Making lr visible separates them.
        let k2 =
            PropertyAggregation::ignore_all().with_keys(VertexKind::Activity, &["command", "lr"]);
        assert_ne!(k2.label(&g, t1), k2.label(&g, t2));
    }

    #[test]
    fn kinds_always_distinguish() {
        let (g, t1, _, d, a) = sample();
        let k = PropertyAggregation::ignore_all();
        assert_ne!(k.label(&g, t1), k.label(&g, d));
        assert_ne!(k.label(&g, d), k.label(&g, a));
    }

    #[test]
    fn missing_properties_are_none_not_error() {
        let (g, _, _, d, _) = sample();
        let k = PropertyAggregation::ignore_all().with_keys(VertexKind::Entity, &["filename"]);
        let label = k.label(&g, d);
        assert_eq!(label.values, vec![None]);
        assert!(label.render(Some("data")).contains('∅'));
    }

    #[test]
    fn render_formats() {
        let (g, t1, ..) = sample();
        let k = PropertyAggregation::ignore_all().with_keys(VertexKind::Activity, &["command"]);
        assert_eq!(k.label(&g, t1).render(None), "activity(train)");
        assert_eq!(PropertyAggregation::ignore_all().label(&g, t1).render(Some("t")), "t");
    }

    #[test]
    fn fig2e_defaults() {
        let k = PropertyAggregation::fig2e();
        assert_eq!(k.keys_for(VertexKind::Entity), &["filename".to_string()]);
        assert_eq!(k.keys_for(VertexKind::Activity), &["command".to_string()]);
        assert!(k.keys_for(VertexKind::Agent).is_empty());
    }
}
