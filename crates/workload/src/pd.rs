//! The `Pd` provenance-graph generator (Sec. V, "Provenance Graphs & PgSeg
//! Queries").
//!
//! Mimics a team of project members performing a sequence of activities:
//!
//! * `|U| = ⌊ln N⌋` agents; the performer of each activity is drawn from a
//!   Zipf with skew `sw` over the agents (work-rate imbalance);
//! * each activity uses `1 + m` input entities (`m ~ Poisson(λi)`) and
//!   generates `1 + n` output entities (`n ~ Poisson(λo)`);
//! * inputs are picked from the existing entities with Zipf skew `se` over
//!   their rank in *reverse order of being* — large `se` prefers the freshest
//!   entity, small `se` lets old entities (datasets, labels) recur;
//! * `|A| = ⌊N / (2 + λo)⌋` activities, so the final vertex count is close to
//!   the requested `N`.
//!
//! Paper defaults: `sw = 1.2, λi = 2, λo = 2, se = 1.5`.
//!
//! On top of the published parameterization the generator models versioned
//! artifacts (each output is either a new version of an existing artifact or
//! the first version of a new one) so that examples can ask realistic
//! file-oriented queries; this affects properties only, not the topology.

use crate::dist::{poisson, ZipfTable};
use prov_model::{EdgeKind, VertexId, VertexKind};
use prov_store::hash::FxHashSet;
use prov_store::ProvGraph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of the `Pd` generator.
#[derive(Debug, Clone, Copy)]
pub struct PdParams {
    /// Target total vertex count `N`.
    pub n: usize,
    /// Work-rate Zipf skew `sw`.
    pub sw: f64,
    /// Mean extra inputs `λi` (inputs per activity = 1 + Poisson(λi)).
    pub lambda_in: f64,
    /// Mean extra outputs `λo`.
    pub lambda_out: f64,
    /// Input-selection Zipf skew `se` (rank 1 = newest entity).
    pub se: f64,
    /// RNG seed (generation is fully deterministic given the parameters).
    pub seed: u64,
}

impl Default for PdParams {
    fn default() -> Self {
        // The paper's default parameter values (Sec. V).
        PdParams { n: 1000, sw: 1.2, lambda_in: 2.0, lambda_out: 2.0, se: 1.5, seed: 42 }
    }
}

impl PdParams {
    /// `Pd{n}` with default shape parameters.
    pub fn with_size(n: usize) -> Self {
        PdParams { n, ..Self::default() }
    }

    /// Number of agents `⌊ln N⌋` (at least 1).
    pub fn agent_count(&self) -> usize {
        ((self.n as f64).ln().floor() as usize).max(1)
    }

    /// Number of activities `⌊N / (2 + λo)⌋` (at least 1).
    pub fn activity_count(&self) -> usize {
        ((self.n as f64 / (2.0 + self.lambda_out)).floor() as usize).max(1)
    }
}

/// Number of seed entities created before the first activity.
const SEED_ENTITIES: usize = 3;

/// Generate a `Pd` provenance graph.
pub fn generate_pd(params: &PdParams) -> ProvGraph {
    let mut rng = StdRng::seed_from_u64(params.seed);
    let mut g = ProvGraph::new();

    let agents: Vec<VertexId> =
        (0..params.agent_count()).map(|i| g.add_agent(&format!("member{i}"))).collect();
    let work_rate = ZipfTable::new(agents.len(), params.sw);

    // Artifact versioning bookkeeping (properties only).
    let mut artifact_versions: Vec<u32> = Vec::new();
    let new_entity =
        |g: &mut ProvGraph, rng: &mut StdRng, artifact_versions: &mut Vec<u32>| -> VertexId {
            let artifact = if !artifact_versions.is_empty() && rng.gen::<f64>() < 0.7 {
                rng.gen_range(0..artifact_versions.len())
            } else {
                artifact_versions.push(0);
                artifact_versions.len() - 1
            };
            artifact_versions[artifact] += 1;
            let version = artifact_versions[artifact];
            let v = g.add_entity(&format!("artifact{artifact}-v{version}"));
            g.set_vprop(v, "filename", format!("artifact{artifact}"));
            g.set_vprop(v, "version", version as i64);
            v
        };

    // Seed entities, attributed to their creators.
    let mut entities: Vec<VertexId> = Vec::new();
    let seed_count = SEED_ENTITIES.min(params.n.saturating_sub(agents.len()).max(1));
    for _ in 0..seed_count {
        let e = new_entity(&mut g, &mut rng, &mut artifact_versions);
        let owner = agents[work_rate.sample_rank(&mut rng, agents.len()) - 1];
        g.add_edge(EdgeKind::WasAttributedTo, e, owner).expect("valid attribution");
        entities.push(e);
    }

    // The rank table for input selection can never need more than N ranks.
    let pick = ZipfTable::new(params.n.max(SEED_ENTITIES) + 1, params.se);

    let activities = params.activity_count();
    for ai in 0..activities {
        if g.vertex_count() >= params.n {
            break;
        }
        let agent = agents[work_rate.sample_rank(&mut rng, agents.len()) - 1];
        let a = g.add_activity(&format!("run{ai}"));
        g.set_vprop(a, "command", format!("cmd{}", ai % 17));
        g.add_edge(EdgeKind::WasAssociatedWith, a, agent).expect("valid association");

        // Inputs: 1 + Poisson(λi) distinct entities, Zipf(se) over recency.
        let m = 1 + poisson(&mut rng, params.lambda_in) as usize;
        let mut chosen: Vec<VertexId> = Vec::with_capacity(m);
        let mut attempts = 0;
        while chosen.len() < m.min(entities.len()) && attempts < 8 * m {
            attempts += 1;
            let rank = pick.sample_rank(&mut rng, entities.len());
            let e = entities[entities.len() - rank]; // rank 1 = newest
            if !chosen.contains(&e) {
                chosen.push(e);
            }
        }
        for e in chosen {
            g.add_edge(EdgeKind::Used, a, e).expect("valid used edge");
        }

        // Outputs: 1 + Poisson(λo) fresh entities.
        let n_out = 1 + poisson(&mut rng, params.lambda_out) as usize;
        for _ in 0..n_out {
            let e = new_entity(&mut g, &mut rng, &mut artifact_versions);
            g.add_edge(EdgeKind::WasGeneratedBy, e, a).expect("valid generation");
            entities.push(e);
        }
    }
    g
}

/// Carve PgSum input segments out of a `Pd` graph: segment `i` covers the
/// `i`-th window of `window` consecutive activities (in creation order) plus
/// every entity its `Used` / `WasGeneratedBy` edges touch. This derives
/// realistic "repeated pipeline stage" segment sets from the same frozen
/// graphs the Fig. 5 sweeps use, so the `fig6` summarization benchmark can
/// exercise PgSum on `Pd` topology without a second generator.
///
/// Returns at most `count` segments (fewer when the graph runs out of
/// activities). Agent vertices and association/attribution edges stay
/// outside the segments, matching the entity/activity shape of [`crate::sd`]
/// segments.
pub fn pd_segments(graph: &ProvGraph, window: usize, count: usize) -> Vec<crate::sd::SdSegment> {
    assert!(window >= 1, "window must be positive");
    let activities = graph.vertices_of_kind(VertexKind::Activity);
    let mut segments = Vec::new();
    for ci in 0..count {
        let start = ci * window;
        if start >= activities.len() {
            break;
        }
        let acts = &activities[start..(start + window).min(activities.len())];
        let mut vertices: Vec<VertexId> = Vec::new();
        let mut edges = Vec::new();
        let mut seen: FxHashSet<VertexId> = FxHashSet::default();
        for &a in acts {
            if seen.insert(a) {
                vertices.push(a);
            }
            // Used: activity -> entity; WasGeneratedBy: entity -> activity.
            for (eid, rec) in graph.out_edges(a) {
                if rec.kind == EdgeKind::Used {
                    if seen.insert(rec.dst) {
                        vertices.push(rec.dst);
                    }
                    edges.push(eid);
                }
            }
            for (eid, rec) in graph.in_edges(a) {
                if rec.kind == EdgeKind::WasGeneratedBy {
                    if seen.insert(rec.src) {
                        vertices.push(rec.src);
                    }
                    edges.push(eid);
                }
            }
        }
        segments.push(crate::sd::SdSegment { vertices, edges });
    }
    segments
}

/// The paper's standard query entities: the first `k` and last `k` entities of
/// a `Pd` graph ("the most challenging PgSeg instance").
pub fn standard_query(graph: &ProvGraph, k: usize) -> (Vec<VertexId>, Vec<VertexId>) {
    let entities = graph.vertices_of_kind(VertexKind::Entity);
    let vsrc = entities.iter().take(k).copied().collect();
    let vdst = entities.iter().rev().take(k).copied().collect();
    (vsrc, vdst)
}

/// Source entities starting at a given percentile of the entity creation
/// order (the Fig. 5(d) sweep).
pub fn sources_at_percentile(graph: &ProvGraph, percent: f64, k: usize) -> Vec<VertexId> {
    let entities = graph.vertices_of_kind(VertexKind::Entity);
    if entities.is_empty() {
        return Vec::new();
    }
    let start = ((entities.len() as f64) * percent / 100.0).floor() as usize;
    let start = start.min(entities.len().saturating_sub(1));
    entities.iter().skip(start).take(k).copied().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_close_to_n() {
        for n in [100usize, 1000, 5000] {
            let g = generate_pd(&PdParams::with_size(n));
            let total = g.vertex_count();
            assert!(
                (total as f64) > 0.8 * n as f64 && (total as f64) < 1.2 * n as f64,
                "n={n} got {total}"
            );
            let s = g.stats();
            assert_eq!(s.agents, PdParams::with_size(n).agent_count());
            assert!(s.activities > 0 && s.entities > s.activities);
        }
    }

    #[test]
    fn pd_segments_cover_disjoint_activity_windows() {
        let g = generate_pd(&PdParams::with_size(500));
        let segs = pd_segments(&g, 10, 6);
        assert_eq!(segs.len(), 6);
        let mut seen_acts = FxHashSet::default();
        for seg in &segs {
            assert!(!seg.vertices.is_empty() && !seg.edges.is_empty());
            for &v in &seg.vertices {
                if g.vertex_kind(v) == VertexKind::Activity {
                    assert!(seen_acts.insert(v), "activity windows must not overlap");
                }
            }
            // Every edge endpoint is inside the segment's vertex set.
            let vset: FxHashSet<VertexId> = seg.vertices.iter().copied().collect();
            for &e in &seg.edges {
                let rec = g.edge(e);
                assert!(vset.contains(&rec.src) && vset.contains(&rec.dst));
            }
        }
        // Asking past the end truncates instead of panicking.
        let all = pd_segments(&g, 1000, 5);
        assert_eq!(all.len(), 1);
    }

    #[test]
    fn graphs_are_valid_prov_dags() {
        let g = generate_pd(&PdParams::with_size(2000));
        g.validate_acyclic().expect("Pd output is a DAG");
        for eid in g.edge_ids() {
            let e = g.edge(eid);
            let (src_kind, dst_kind) = e.kind.endpoints();
            assert_eq!(g.vertex_kind(e.src), src_kind);
            assert_eq!(g.vertex_kind(e.dst), dst_kind);
            // Temporal consistency for the early-stopping rule.
            assert!(g.vertex(e.src).birth > g.vertex(e.dst).birth);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate_pd(&PdParams::with_size(500));
        let b = generate_pd(&PdParams::with_size(500));
        assert_eq!(a.vertex_count(), b.vertex_count());
        assert_eq!(a.edge_count(), b.edge_count());
        let c = generate_pd(&PdParams { seed: 43, ..PdParams::with_size(500) });
        assert!(
            a.edge_count() != c.edge_count() || {
                // Same count is possible; compare structure then.
                a.edge_ids().any(|e| {
                    let (x, y) = (a.edge(e), c.edge(e));
                    x.src != y.src || x.dst != y.dst
                })
            },
            "different seeds should differ"
        );
    }

    #[test]
    fn degree_means_track_lambdas() {
        let params = PdParams { n: 8000, ..PdParams::default() };
        let g = generate_pd(&params);
        let s = g.stats();
        let avg_in = s.used as f64 / s.activities as f64;
        let avg_out = s.generated as f64 / s.activities as f64;
        // Expected 1 + λ (with some dedup slack on inputs).
        assert!((avg_out - 3.0).abs() < 0.3, "avg_out={avg_out}");
        assert!(avg_in > 2.0 && avg_in < 3.2, "avg_in={avg_in}");
    }

    #[test]
    fn standard_query_picks_extremes() {
        let g = generate_pd(&PdParams::with_size(300));
        let (vsrc, vdst) = standard_query(&g, 2);
        assert_eq!(vsrc.len(), 2);
        assert_eq!(vdst.len(), 2);
        let entities = g.vertices_of_kind(VertexKind::Entity);
        assert_eq!(vsrc[0], entities[0]);
        assert_eq!(vdst[0], *entities.last().unwrap());
    }

    #[test]
    fn percentile_sources_move_with_percent() {
        let g = generate_pd(&PdParams::with_size(1000));
        let p0 = sources_at_percentile(&g, 0.0, 2);
        let p50 = sources_at_percentile(&g, 50.0, 2);
        let p80 = sources_at_percentile(&g, 80.0, 2);
        assert!(g.vertex(p0[0]).birth < g.vertex(p50[0]).birth);
        assert!(g.vertex(p50[0]).birth < g.vertex(p80[0]).birth);
    }

    #[test]
    fn versions_accumulate_per_artifact() {
        let g = generate_pd(&PdParams::with_size(1000));
        let mut max_version = 0i64;
        for &e in g.vertices_of_kind(VertexKind::Entity) {
            if let Some(v) = g.vprop(e, "version").and_then(|p| p.as_int()) {
                max_version = max_version.max(v);
            }
        }
        assert!(max_version >= 3, "artifacts should gather several versions");
    }
}
