//! Stable resumable cursors for paginated pipeline evaluation.
//!
//! A [`QueryCursor`] is two watermarks:
//!
//! * a **snapshot watermark** (`vertices`/`edges` — a [`DeltaCursor`]): the
//!   log position the first page was evaluated at. Every resumption
//!   re-evaluates the pipeline *at this watermark* via the engine's bounded
//!   replay ([`crate::query::evaluate_at`]), so ingest between pages can
//!   never add, remove, or reorder rows;
//! * a **rank watermark** (`after`): the raw id of the last row already
//!   delivered. Rows are always sorted ascending, so "the next page" is the
//!   first `page_size` rows strictly above it — no offsets, no skips or
//!   duplicates even if the caller retries a page.
//!
//! Invariants (DESIGN.md §9):
//!
//! 1. concatenating the pages of any cursor walk equals the one-shot answer
//!    evaluated at the cursor's snapshot watermark, byte for byte;
//! 2. the walk is insensitive to ingest concurrent with pagination: the
//!    append-only log plus per-row ascending edge ids let the engine replay
//!    the watermark prefix exactly (structural stability);
//! 3. property *filters* read the live store — property writes do not move
//!    the delta cursor — so full byte-stability of filtered pipelines
//!    additionally needs the pinned graph of a session (the wire layer's
//!    `session` field). Unfiltered pipelines are stable regardless;
//! 4. a cursor is only meaningful against the database it came from: a
//!    watermark beyond the snapshot's log is rejected as a stale cursor.

use crate::graph::DeltaCursor;
use prov_model::VertexId;
use serde::{Deserialize, Serialize};

/// A resumable position in a paginated query (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueryCursor {
    /// Snapshot watermark: vertices present at first evaluation.
    pub vertices: u32,
    /// Snapshot watermark: edges present at first evaluation.
    pub edges: u32,
    /// Rank watermark: raw id of the last row already delivered.
    pub after: u32,
}

impl QueryCursor {
    /// The snapshot watermark as a [`DeltaCursor`] (what
    /// [`crate::query::evaluate_at`] replays).
    pub fn watermark(&self) -> DeltaCursor {
        DeltaCursor { vertices: self.vertices, edges: self.edges }
    }
}

/// One page of a paginated result.
#[derive(Debug, Clone, PartialEq)]
pub struct Page {
    /// The page's rows (ascending).
    pub rows: Vec<VertexId>,
    /// Cursor for the next page; `None` when the walk is complete.
    pub next: Option<QueryCursor>,
}

/// Slice the next page out of a full (sorted) row set evaluated at
/// `watermark`.
///
/// `resume` is the cursor of the previous page, if any; `page_size = None`
/// means "everything remaining" (and therefore never yields a next cursor).
pub fn paginate(
    rows: &[VertexId],
    watermark: DeltaCursor,
    resume: Option<&QueryCursor>,
    page_size: Option<usize>,
) -> Page {
    let from = match resume {
        Some(cursor) => rows.partition_point(|v| v.raw() <= cursor.after),
        None => 0,
    };
    let remaining = &rows[from..];
    let take = page_size.unwrap_or(remaining.len()).min(remaining.len());
    let page = &remaining[..take];
    let next = if take < remaining.len() {
        page.last().map(|last| QueryCursor {
            vertices: watermark.vertices,
            edges: watermark.edges,
            after: last.raw(),
        })
    } else {
        None
    };
    Page { rows: page.to_vec(), next }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(raw: &[u32]) -> Vec<VertexId> {
        raw.iter().copied().map(VertexId::new).collect()
    }

    #[test]
    fn pages_concatenate_to_the_one_shot_answer() {
        let rows = ids(&[2, 3, 5, 8, 13, 21, 34]);
        let w = DeltaCursor { vertices: 40, edges: 17 };
        for page_size in 1..=rows.len() + 1 {
            let mut walked = Vec::new();
            let mut cursor: Option<QueryCursor> = None;
            let mut hops = 0;
            loop {
                let page = paginate(&rows, w, cursor.as_ref(), Some(page_size));
                walked.extend_from_slice(&page.rows);
                hops += 1;
                assert!(hops <= rows.len() + 1, "walk must terminate");
                match page.next {
                    Some(next) => {
                        assert_eq!(next.watermark(), w, "watermark rides along unchanged");
                        cursor = Some(next);
                    }
                    None => break,
                }
            }
            assert_eq!(walked, rows, "page size {page_size}");
            assert_eq!(hops, rows.len().div_ceil(page_size).max(1));
        }
    }

    #[test]
    fn retrying_a_cursor_is_idempotent() {
        let rows = ids(&[1, 2, 3, 4]);
        let w = DeltaCursor { vertices: 5, edges: 0 };
        let first = paginate(&rows, w, None, Some(2));
        let again = paginate(&rows, w, None, Some(2));
        assert_eq!(first, again);
        let second = paginate(&rows, w, first.next.as_ref(), Some(2));
        let second_again = paginate(&rows, w, first.next.as_ref(), Some(2));
        assert_eq!(second, second_again);
        assert!(second.next.is_none());
    }

    #[test]
    fn unlimited_page_size_returns_everything_without_a_cursor() {
        let rows = ids(&[7, 9]);
        let w = DeltaCursor::default();
        let page = paginate(&rows, w, None, None);
        assert_eq!(page.rows, rows);
        assert!(page.next.is_none());
    }

    #[test]
    fn empty_result_paginates_to_one_empty_page() {
        let page = paginate(&[], DeltaCursor::default(), None, Some(10));
        assert!(page.rows.is_empty() && page.next.is_none());
    }
}
