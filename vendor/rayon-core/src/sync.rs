//! The synchronization facade: every primitive the executor touches is
//! imported through this module, never from `std::sync` directly.
//!
//! In a normal build the re-exports are the std types with zero overhead. A
//! model-checking build (`RUSTFLAGS="--cfg prov_loom"`) swaps all of them
//! for the `loom-lite` doubles, whose every operation is a yield point of a
//! schedule-exhaustive cooperative scheduler — `tests/loom.rs` then proves
//! the executor's load-bearing properties over *all* interleavings instead
//! of the ones the OS happens to produce.
//!
//! Keeping the swap at the import layer (rather than sprinkling
//! `cfg(prov_loom)` through the executor) means the checked code is
//! byte-for-byte the code that ships; only this module differs.
//!
//! Atomics note: loom-lite models every atomic access as sequentially
//! consistent, so executor sync code sticks to `SeqCst`/`AcqRel`/`Acquire`/
//! `Release` orderings — `Ordering::Relaxed` here would let the real build
//! be weaker than the model checker verifies, and the workspace lint gate
//! (`prov-check`, rule `relaxed-ordering`) bans it.

#[cfg(not(prov_loom))]
pub(crate) use std::sync::{atomic, Arc, Condvar, Mutex};

#[cfg(prov_loom)]
pub(crate) use loom_lite::sync::{atomic, Arc, Condvar, Mutex};

/// Spawn a named detached thread (std) or a modeled thread (loom build).
#[cfg(not(prov_loom))]
pub(crate) fn spawn_named<F>(name: String, f: F)
where
    F: FnOnce() + Send + 'static,
{
    std::thread::Builder::new().name(name).spawn(f).expect("failed to spawn thread");
}

#[cfg(prov_loom)]
pub(crate) fn spawn_named<F>(name: String, f: F)
where
    F: FnOnce() + Send + 'static,
{
    loom_lite::thread::spawn_named(name, f);
}
