//! Bounded path-language extraction — the Psg invariant checker.
//!
//! A valid Psg preserves exactly the class-labeled path words of the input
//! segments (condition (c) of the Psg definition): every word of `g0` appears
//! in the summary and vice versa. This module enumerates all words up to a
//! length bound, giving tests a decidable (bounded) version of the invariant.
//! Since merging never introduces *short* new words without introducing one at
//! the first divergence point, bounded equality is a strong check in practice.

use crate::union::G0;
use std::collections::BTreeSet;

/// A path word: alternating class ids and edge kinds, flattened.
pub type Word = Vec<u32>;

/// Enumerate every class-labeled path word of `graph` with at most `max_edges`
/// edges (words of single vertices included).
pub fn path_words(graph: &G0, max_edges: usize) -> BTreeSet<Word> {
    let mut words = BTreeSet::new();
    for v in 0..graph.len() as u32 {
        let mut word: Word = vec![graph.class(v).0];
        extend(graph, v, max_edges, &mut word, &mut words);
    }
    words
}

fn extend(graph: &G0, v: u32, remaining: usize, word: &mut Word, words: &mut BTreeSet<Word>) {
    words.insert(word.clone());
    if remaining == 0 {
        return;
    }
    for &(k, d) in &graph.out_adj[v as usize] {
        word.push(k as u32 + 1_000_000); // offset: edge kinds vs class ids
        word.push(graph.class(d).0);
        extend(graph, d, remaining - 1, word, words);
        word.pop();
        word.pop();
    }
}

/// Check the bounded Psg invariant: the summary (as a quotient `G0`) has
/// exactly the same words as the input `g0`. Returns a human-readable error
/// on the first difference.
pub fn check_invariant(g0: &G0, summary: &G0, max_edges: usize) -> Result<(), String> {
    let w_in = path_words(g0, max_edges);
    let w_out = path_words(summary, max_edges);
    if let Some(extra) = w_out.difference(&w_in).next() {
        return Err(format!("summary INTRODUCES path word {extra:?}"));
    }
    if let Some(lost) = w_in.difference(&w_out).next() {
        return Err(format!("summary LOSES path word {lost:?}"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregation::PropertyAggregation;
    use crate::merge::{merge, quotient};
    use crate::segment_ref::SegmentRef;
    use crate::union::build_g0;
    use prov_model::EdgeKind;
    use prov_store::ProvGraph;

    fn twins_g0() -> G0 {
        let mut g = ProvGraph::new();
        let mut segs = Vec::new();
        for i in 0..2 {
            let d = g.add_entity(&format!("d{i}"));
            let t = g.add_activity("t");
            let w = g.add_entity(&format!("w{i}"));
            let e1 = g.add_edge(EdgeKind::Used, t, d).unwrap();
            let e2 = g.add_edge(EdgeKind::WasGeneratedBy, w, t).unwrap();
            segs.push(SegmentRef::new(vec![d, t, w], vec![e1, e2]));
        }
        build_g0(&g, &segs, &PropertyAggregation::ignore_all(), 1)
    }

    #[test]
    fn words_enumerate_prefixes() {
        let g0 = twins_g0();
        let words = path_words(&g0, 2);
        // Single-vertex words: one per class = 3.
        let singles = words.iter().filter(|w| w.len() == 1).count();
        assert_eq!(singles, 3);
        // Two-edge word: w -G-> t -U-> d appears.
        assert!(words.iter().any(|w| w.len() == 5));
    }

    #[test]
    fn merge_preserves_bounded_words() {
        let g0 = twins_g0();
        let merged = merge(&g0);
        let q = quotient(&g0, &merged.group_of, merged.members.len());
        check_invariant(&g0, &q, 4).expect("twin merge is path-preserving");
    }

    #[test]
    fn detector_catches_introduced_paths() {
        // Merge two vertices ILLEGALLY: d0 with w0 (different classes — the
        // quotient would mix labels; instead force same-class abuse at k=0).
        let mut g = ProvGraph::new();
        let d = g.add_entity("d");
        let t = g.add_activity("t");
        let w = g.add_entity("w");
        let e1 = g.add_edge(EdgeKind::Used, t, d).unwrap();
        let e2 = g.add_edge(EdgeKind::WasGeneratedBy, w, t).unwrap();
        let seg = SegmentRef::new(vec![d, t, w], vec![e1, e2]);
        let g0 = build_g0(&g, &[seg], &PropertyAggregation::ignore_all(), 0);
        // k=0: d and w share a class. Merging them creates the cyclic word
        // w -G-> t -U-> (d=w) -G-> t ... i.e. new longer words.
        let group_of = vec![0u32, 1, 0];
        let q = quotient(&g0, &group_of, 2);
        let err = check_invariant(&g0, &q, 4).unwrap_err();
        assert!(err.contains("INTRODUCES"), "{err}");
    }

    #[test]
    fn detector_catches_lost_paths() {
        let g0 = twins_g0();
        // Summary that drops all edges: loses words.
        let mut broken = g0.clone();
        for adj in broken.out_adj.iter_mut() {
            adj.clear();
        }
        let err = check_invariant(&g0, &broken, 3).unwrap_err();
        assert!(err.contains("LOSES"), "{err}");
    }
}
