//! Benchmark harness for the Fig. 5 reproduction and the summarization
//! sweeps (see `DESIGN.md` §4).
//!
//! * [`harness`] — one function per subplot, printable as text tables, plus
//!   the worklist ablation (`wl`), the summarization runtime sweeps
//!   (`6a`–`6c`: pSum vs seed PgSum vs the counting/quotient-incremental
//!   rewrite), and the shared [`PdCache`] / [`SdCache`] so a batch run
//!   freezes each workload once;
//! * [`fig7`] — the serving-loop sweeps (`7a`–`7c`: ingest/query
//!   interleaving, lineage latency, session-open latency) driven over a live
//!   `ProvDb`, committed as `BENCH_fig7.json`;
//! * [`fig8`] — the query-layer sweeps (`8a`/`8b`/`8t`: IR pipeline latency
//!   by depth, paginated cursor walk vs one-shot, chunked-frontier thread
//!   scaling), committed as `BENCH_fig8.json`;
//! * [`coldstart`] — the cold-start recovery sweep (`cs`: snapshot+tail
//!   recovery vs full WAL replay vs in-memory re-ingest), committed as
//!   `BENCH_coldstart.json`;
//! * [`report`] — the `BENCH_fig5.json` / `BENCH_fig6.json` /
//!   `BENCH_fig7.json` / `BENCH_fig8.json` document model, the >2×
//!   regression gate CI applies against the committed baselines, and the
//!   per-figure trajectory summary table printed into the CI job log;
//! * `src/bin/figure.rs` — CLI that regenerates any figure
//!   (`cargo run -p prov-bench --release --bin figure -- 5a`) and the JSON
//!   bench mode (`cargo run -p prov-bench --release -- --quick --json
//!   BENCH_fig5.json`);
//! * `benches/` — Criterion micro-benchmarks over the same kernels.

pub mod coldstart;
pub mod fig10;
pub mod fig7;
pub mod fig8;
pub mod harness;
pub mod report;

pub use coldstart::figcs;
pub use fig10::{fig10a, fig10b};
pub use fig7::{fig7a, fig7b, fig7c, fig7t};
pub use fig8::{fig8a, fig8b, fig8t};
pub use harness::{
    run_figure, run_figure_cached, run_figure_with_caches, FigureResult, PdCache, PdInstance,
    Point, Scale, SdCache, Series, ALL_FIGURES, BENCH_FIGURES, COLDSTART_FIGURES, FIG10_FIGURES,
    FIG6_FIGURES, FIG7_FIGURES, FIG8_FIGURES, THREAD_SWEEP,
};
pub use report::{BenchReport, REGRESSION_FACTOR, REGRESSION_FLOOR_SECS};
