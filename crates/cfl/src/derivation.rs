//! Derivation recording for CFLR facts (the paper's "parent table").
//!
//! CflrB answers *reachability*; when the user needs the witnessing paths
//! ("If path is needed, a parent table would be used similar to BFS",
//! Sec. III-B), each derived fact remembers how it was first produced:
//!
//! * `Base` — a terminal rule matched a graph edge / self-loop;
//! * `Unit` — copied through a unit rule `A → B`;
//! * `Join` — composed from two adjacent facts by a binary rule `A → B C`.
//!
//! Recursively expanding a fact's derivation tree yields one witnessing path;
//! its vertex set is what segmentation would display. Only the *first*
//! derivation is kept (like a BFS parent pointer), so reconstruction is
//! linear in the path length.

use crate::symbol::{NonTerminal, Terminal};
use prov_store::hash::FxHashMap;

/// A fact key: `(nonterminal, i, j)`.
pub type FactKey = (NonTerminal, u32, u32);

/// How a fact was first derived.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Derivation {
    /// Matched a terminal edge from `i` to `j`.
    Base(Terminal),
    /// Copied from `B(i, j)` through a unit rule.
    Unit(NonTerminal),
    /// Composed from `B(i, mid)` and `C(mid, j)`.
    Join {
        /// Left child nonterminal.
        left: NonTerminal,
        /// Right child nonterminal.
        right: NonTerminal,
        /// The shared middle vertex.
        mid: u32,
    },
}

/// Parent table: first derivation of every fact.
#[derive(Debug, Default)]
pub struct DerivationTable {
    parents: FxHashMap<FactKey, Derivation>,
}

impl DerivationTable {
    /// Empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record the first derivation of a fact (later ones are ignored, like
    /// BFS parent pointers).
    pub fn record(&mut self, key: FactKey, how: Derivation) {
        self.parents.entry(key).or_insert(how);
    }

    /// Number of recorded facts.
    pub fn len(&self) -> usize {
        self.parents.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.parents.is_empty()
    }

    /// Derivation of a fact, if known.
    pub fn derivation(&self, key: &FactKey) -> Option<&Derivation> {
        self.parents.get(key)
    }

    /// Reconstruct one witnessing path for `key`: the ordered vertex sequence
    /// from `i` to `j` (adjacent duplicates collapsed — vertex-label
    /// self-loops do not repeat vertices). Returns `None` for unknown facts.
    pub fn witness_path(&self, key: FactKey) -> Option<Vec<u32>> {
        let mut out: Vec<u32> = Vec::new();
        out.push(key.1);
        self.expand(key, &mut out)?;
        out.dedup();
        Some(out)
    }

    /// Append the interior + right endpoint of `key`'s path to `out`
    /// (the left endpoint is already there).
    fn expand(&self, key: FactKey, out: &mut Vec<u32>) -> Option<()> {
        match *self.parents.get(&key)? {
            Derivation::Base(_) => {
                out.push(key.2);
                Some(())
            }
            Derivation::Unit(from) => self.expand((from, key.1, key.2), out),
            Derivation::Join { left, right, mid } => {
                self.expand((left, key.1, mid), out)?;
                self.expand((right, mid, key.2), out)
            }
        }
    }
}

/// Tracing hook for the solver: either a no-op or a recording table.
pub trait Tracer {
    /// A base fact was inserted.
    fn base(&mut self, key: FactKey, t: Terminal);
    /// A unit-rule fact was inserted.
    fn unit(&mut self, key: FactKey, from: NonTerminal);
    /// A join fact was inserted.
    fn join(&mut self, key: FactKey, left: NonTerminal, right: NonTerminal, mid: u32);
}

/// Zero-cost tracer (the default solve path).
#[derive(Debug, Default, Clone, Copy)]
pub struct NoTrace;

impl Tracer for NoTrace {
    #[inline]
    fn base(&mut self, _key: FactKey, _t: Terminal) {}

    #[inline]
    fn unit(&mut self, _key: FactKey, _from: NonTerminal) {}

    #[inline]
    fn join(&mut self, _key: FactKey, _left: NonTerminal, _right: NonTerminal, _mid: u32) {}
}

impl Tracer for DerivationTable {
    fn base(&mut self, key: FactKey, t: Terminal) {
        self.record(key, Derivation::Base(t));
    }

    fn unit(&mut self, key: FactKey, from: NonTerminal) {
        self.record(key, Derivation::Unit(from));
    }

    fn join(&mut self, key: FactKey, left: NonTerminal, right: NonTerminal, mid: u32) {
        self.record(key, Derivation::Join { left, right, mid });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nt(i: u16) -> NonTerminal {
        NonTerminal(i)
    }

    #[test]
    fn base_fact_path_is_the_edge() {
        let mut t = DerivationTable::new();
        t.record((nt(0), 3, 7), Derivation::Base(Terminal::fwd(prov_model::EdgeKind::Used)));
        assert_eq!(t.witness_path((nt(0), 3, 7)), Some(vec![3, 7]));
        assert_eq!(t.witness_path((nt(0), 3, 8)), None);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn join_expands_both_sides() {
        // A(0,2) = B(0,1) C(1,2), all bases.
        let u = Terminal::fwd(prov_model::EdgeKind::Used);
        let mut t = DerivationTable::new();
        t.record((nt(1), 0, 1), Derivation::Base(u));
        t.record((nt(2), 1, 2), Derivation::Base(u));
        t.record((nt(0), 0, 2), Derivation::Join { left: nt(1), right: nt(2), mid: 1 });
        assert_eq!(t.witness_path((nt(0), 0, 2)), Some(vec![0, 1, 2]));
    }

    #[test]
    fn unit_rules_and_self_loops_collapse() {
        // Self-loop base (vertex label) then a real edge: path has no dup.
        let e_label = Terminal::VertexLabel(prov_model::VertexKind::Entity);
        let u = Terminal::fwd(prov_model::EdgeKind::Used);
        let mut t = DerivationTable::new();
        t.record((nt(2), 0, 0), Derivation::Base(e_label));
        t.record((nt(3), 0, 5), Derivation::Base(u));
        t.record((nt(1), 0, 5), Derivation::Join { left: nt(2), right: nt(3), mid: 0 });
        t.record((nt(0), 0, 5), Derivation::Unit(nt(1)));
        assert_eq!(t.witness_path((nt(0), 0, 5)), Some(vec![0, 5]));
    }

    #[test]
    fn first_derivation_wins() {
        let u = Terminal::fwd(prov_model::EdgeKind::Used);
        let g = Terminal::fwd(prov_model::EdgeKind::WasGeneratedBy);
        let mut t = DerivationTable::new();
        t.record((nt(0), 1, 2), Derivation::Base(u));
        t.record((nt(0), 1, 2), Derivation::Base(g));
        assert_eq!(t.derivation(&(nt(0), 1, 2)), Some(&Derivation::Base(u)));
    }
}
