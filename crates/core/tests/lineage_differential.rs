//! Epoch-scratch lineage differential (ISSUE 5): the allocation-free BFS
//! engine must answer exactly like the frozen seed path on random `Pd`
//! workloads — same sorted closure, both directions, from entity and
//! activity starts alike — and its bounded variants must be consistent
//! prefixes/rings of the unbounded walk.

use proptest::prelude::*;
use prov_core::{lineage_over, lineage_reference, LineageBound, LineageDirection};
use prov_model::VertexKind;
use prov_store::ProvIndex;
use prov_workload::{generate_pd, PdParams};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn epoch_bfs_matches_seed_lineage_on_pd(
        n in 60usize..400,
        seed in 0u64..1_000,
        se in 1.1f64..2.1,
        start_pick in any::<prop::sample::Index>(),
        kind_pick in 0usize..2,
    ) {
        let graph = generate_pd(&PdParams { n, seed, se, ..PdParams::default() });
        let idx = ProvIndex::build(&graph);
        let kind = [VertexKind::Entity, VertexKind::Activity][kind_pick];
        let of_kind = graph.vertices_of_kind(kind);
        // Pd always seeds entities and at least one activity.
        prop_assert!(!of_kind.is_empty());
        let start = *start_pick.get(of_kind);
        for dir in [LineageDirection::Ancestors, LineageDirection::Descendants] {
            let new = lineage_over(&idx, start, dir, LineageBound::Unbounded);
            let old = lineage_reference(&idx, start, dir);
            prop_assert_eq!(&new, &old, "closure diverged at {} {:?}", start, dir);
            prop_assert!(new.windows(2).all(|w| w[0] < w[1]), "unsorted");

            // Within(d) is monotone in d and reaches the closure; Exactly(d)
            // rings partition Within's increments.
            let mut prev = Vec::new();
            for d in 1..=8u32 {
                let within = lineage_over(&idx, start, dir, LineageBound::Within(d));
                prop_assert!(prev.iter().all(|v| within.contains(v)), "Within not monotone");
                let ring = lineage_over(&idx, start, dir, LineageBound::Exactly(d));
                let grew: Vec<_> =
                    within.iter().filter(|v| !prev.contains(v)).copied().collect();
                prop_assert_eq!(&ring, &grew, "ring {} != Within increment", d);
                prev = within;
            }
            prop_assert!(prev.iter().all(|v| new.contains(v)), "Within(8) ⊄ closure");
        }
    }
}
