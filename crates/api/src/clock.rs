//! Injectable time source for the per-response [`crate::Stats`] envelope.
//!
//! The service never calls `Instant::now()` directly: it asks a [`Clock`].
//! Production uses the monotonic [`SystemClock`]; tests inject a
//! [`ManualClock`] so latency fields are deterministic and assertable.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A monotonic microsecond counter.
pub trait Clock: Send + Sync {
    /// Microseconds elapsed since an arbitrary (but fixed) origin.
    fn now_micros(&self) -> u64;
}

/// Wall-clock backed [`Clock`]: microseconds since service construction.
#[derive(Debug, Clone)]
pub struct SystemClock {
    origin: Instant,
}

impl Default for SystemClock {
    fn default() -> Self {
        SystemClock { origin: Instant::now() }
    }
}

impl Clock for SystemClock {
    fn now_micros(&self) -> u64 {
        self.origin.elapsed().as_micros() as u64
    }
}

/// Hand-driven [`Clock`] for tests: starts at zero, advances only on
/// [`ManualClock::advance`] — or by a fixed step per reading when built with
/// [`ManualClock::ticking`], which makes service latency stamps exactly
/// predictable. Clones share the same counter, so a test can keep one handle
/// and hand another to the service.
#[derive(Debug, Clone, Default)]
pub struct ManualClock {
    micros: Arc<AtomicU64>,
    tick: u64,
}

impl ManualClock {
    /// A clock frozen at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// A clock that advances by `step` microseconds every reading, so the
    /// interval between two consecutive readings is always exactly `step`.
    pub fn ticking(step: u64) -> Self {
        ManualClock { micros: Arc::new(AtomicU64::new(0)), tick: step }
    }

    /// Advance the shared counter.
    pub fn advance(&self, micros: u64) {
        self.micros.fetch_add(micros, Ordering::SeqCst);
    }
}

impl Clock for ManualClock {
    fn now_micros(&self) -> u64 {
        self.micros.fetch_add(self.tick, Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_is_shared_and_deterministic() {
        let clock = ManualClock::new();
        let handle = clock.clone();
        assert_eq!(clock.now_micros(), 0);
        handle.advance(250);
        assert_eq!(clock.now_micros(), 250);
    }

    #[test]
    fn system_clock_is_monotone() {
        let clock = SystemClock::default();
        let a = clock.now_micros();
        let b = clock.now_micros();
        assert!(b >= a);
    }
}
