//! Concurrent regression test for the atomic [`SnapshotCounters`].
//!
//! `ProvDb::snapshot` takes `&self` and any number of query threads may race
//! through it; the reuse/refresh/rebuild tallies are `AtomicU64`s precisely
//! so that accounting survives that race. This test hammers acquisition from
//! many threads across repeated staleness transitions and checks the books
//! balance exactly:
//!
//! * every acquisition lands in exactly one counter slot (no lost updates);
//! * each staleness transition is resolved exactly **once** — the
//!   double-check under the write lock means racing callers never both pay
//!   for the same refresh/rebuild.

use prov_core::{ProvDb, SnapshotCounters};

#[test]
fn snapshot_counters_balance_under_concurrent_acquisition() {
    const ROUNDS: usize = 16;
    const THREADS: usize = 8;
    const ACQUISITIONS: usize = 32;

    let mut db = ProvDb::new();
    let alice = db.add_agent("alice").expect("fresh agent");
    assert_eq!(db.snapshot_counters(), SnapshotCounters::default());

    for _ in 0..ROUNDS {
        // Stale the cached snapshot (round 1 starts from the cold slot).
        db.add_artifact_version("dataset", Some(alice)).expect("fresh version");
        let cursor = db.graph().cursor();
        std::thread::scope(|s| {
            for _ in 0..THREADS {
                let db = &db;
                s.spawn(move || {
                    for _ in 0..ACQUISITIONS {
                        // Whoever wins the staleness race, every caller must
                        // come back with a snapshot at the current cursor.
                        assert_eq!(db.snapshot().cursor(), cursor);
                    }
                });
            }
        });
    }

    let c = db.snapshot_counters();
    let total = c.reuses + c.refreshes + c.rebuilds;
    assert_eq!(total, (ROUNDS * THREADS * ACQUISITIONS) as u64, "one slot per acquisition");
    // One mutation per round ⇒ exactly one non-reuse acquisition per round.
    assert_eq!(c.refreshes + c.rebuilds, ROUNDS as u64, "one transition per staleness");
    // The very first acquisition found an empty slot: a cold rebuild.
    assert!(c.rebuilds >= 1, "cold start rebuilds");
    // Single-artifact deltas against a growing graph stay under the default
    // refresh threshold, so the steady state is the incremental path.
    assert!(c.refreshes >= 1, "warm transitions refresh incrementally");
}
