//! The [`Strategy`] trait and primitive/combinator strategies.

use crate::test_runner::TestRng;
use std::fmt::Debug;
use std::ops::Range;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Sample one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

impl<V: Debug> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;

    fn sample(&self, rng: &mut TestRng) -> V {
        (**self).sample(rng)
    }
}

/// Box a strategy for heterogeneous collections (used by `prop_oneof!`).
pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
    Box::new(s)
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Weighted choice among strategies of one value type.
pub struct OneOf<V> {
    options: Vec<(u32, Box<dyn Strategy<Value = V>>)>,
    total_weight: u64,
}

impl<V: Debug> OneOf<V> {
    /// Build from `(weight, strategy)` pairs.
    pub fn new(options: Vec<(u32, Box<dyn Strategy<Value = V>>)>) -> Self {
        let total_weight = options.iter().map(|(w, _)| *w as u64).sum();
        assert!(total_weight > 0, "prop_oneof! needs positive total weight");
        OneOf { options, total_weight }
    }
}

impl<V: Debug> Strategy for OneOf<V> {
    type Value = V;

    fn sample(&self, rng: &mut TestRng) -> V {
        let mut pick = rng.below(self.total_weight);
        for (weight, strat) in &self.options {
            if pick < *weight as u64 {
                return strat.sample(rng);
            }
            pick -= *weight as u64;
        }
        unreachable!("weights sum to total_weight")
    }
}

macro_rules! int_range_strategies {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn sample(&self, rng: &mut TestRng) -> $ty {
                assert!(
                    self.start < self.end,
                    "empty range strategy {}..{}", self.start, self.end
                );
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(rng.below(span) as $ty)
            }
        }
    )*};
}

int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategies {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}
