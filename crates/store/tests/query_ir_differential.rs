//! Differential proptests for the query IR (ISSUE 8 acceptance): pipelines
//! produced by the lowering constructors must answer **byte-identically** to
//! their frozen fixed-shape references — `ProvGraph::find_by_prop` and
//! `pattern::match_paths` — at chunk counts 1/2/4/8, with the inline-level
//! threshold forced to 0 so even one-vertex frontiers exercise the chunked
//! fan-out and merge machinery. The lineage differentials live next to
//! their reference in `prov-core`; the cursor-stability interleavings live
//! in `prov-api`.

use proptest::prelude::*;
use prov_model::{EdgeKind, PropValue, VertexId, VertexKind};
use prov_store::query::{evaluate_with_frontier_min, lower_pattern, Pipeline, Plan};
use prov_store::{Budget, NodeSpec, PathPattern, PatternDir, ProvGraph, ProvIndex, RelSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CHUNKS: [usize; 4] = [1, 2, 4, 8];
const KEYS: [&str; 2] = ["stage", "score"];

/// Random layered provenance DAG: every edge points from a newer vertex's
/// row to an older vertex (ancestry runs backward in creation order), so
/// the graph is acyclic by construction. Properties land on a random subset.
fn random_graph(rng: &mut StdRng, steps: usize) -> ProvGraph {
    let mut g = ProvGraph::new();
    let mut entities = vec![g.add_entity("e0")];
    let mut activities: Vec<VertexId> = Vec::new();
    for step in 0..steps {
        if rng.gen_bool(0.45) {
            let a = g.add_activity(&format!("a{step}"));
            for _ in 0..rng.gen_range(1..3) {
                let used = entities[rng.gen_range(0..entities.len())];
                let _ = g.add_edge(EdgeKind::Used, a, used);
            }
            activities.push(a);
        } else {
            let e = g.add_entity(&format!("e{step}"));
            if !activities.is_empty() && rng.gen_bool(0.8) {
                let gen = activities[rng.gen_range(0..activities.len())];
                let _ = g.add_edge(EdgeKind::WasGeneratedBy, e, gen);
            }
            if rng.gen_bool(0.3) {
                let src = entities[rng.gen_range(0..entities.len())];
                let _ = g.add_edge(EdgeKind::WasDerivedFrom, e, src);
            }
            entities.push(e);
        }
        if rng.gen_bool(0.5) {
            let v = VertexId::new(rng.gen_range(0..g.vertex_count()) as u32);
            let key = KEYS[rng.gen_range(0..KEYS.len())];
            let value: PropValue = if rng.gen_bool(0.5) {
                PropValue::from(format!("v{}", rng.gen_range(0..3)))
            } else {
                PropValue::from(rng.gen_range(0..3) as i64)
            };
            g.set_vprop(v, key, value);
        }
    }
    g
}

fn eval_rows(g: &ProvGraph, idx: &ProvIndex, pipeline: Pipeline, threads: usize) -> Vec<VertexId> {
    let plan = Plan::compile(pipeline).expect("lowered pipelines compile");
    evaluate_with_frontier_min(g, idx, &plan, idx.cursor(), threads, 0)
        .expect("full-watermark evaluation cannot be stale")
        .rows
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// `Pipeline::find_by_prop` == `ProvGraph::find_by_prop`, with and
    /// without a declared secondary index, at every chunk count.
    #[test]
    fn find_by_prop_lowering_matches_reference(
        seed in 0u64..100_000,
        steps in 5usize..50,
        declare_index in any::<bool>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut g = random_graph(&mut rng, steps);
        if declare_index {
            g.create_vprop_index(VertexKind::Entity, KEYS[0]);
        }
        let idx = ProvIndex::build(&g);
        for kind in [VertexKind::Entity, VertexKind::Activity] {
            for key in KEYS {
                for value in [
                    PropValue::from("v0"), PropValue::from("v1"),
                    PropValue::from(0i64), PropValue::from(1i64),
                ] {
                    let reference = g.find_by_prop(kind, key, &value);
                    for threads in CHUNKS {
                        let ir = eval_rows(
                            &g, &idx,
                            Pipeline::find_by_prop(kind, key, value.clone()),
                            threads,
                        );
                        prop_assert_eq!(
                            &ir, &reference,
                            "kind {:?} key {} value {:?} chunks {}", kind, key, value, threads
                        );
                    }
                }
            }
        }
    }

    /// Lowerable star patterns: the pipeline's row set == the sorted,
    /// deduplicated endpoint set of `match_paths`, at every chunk count.
    #[test]
    fn star_pattern_lowering_matches_match_paths(
        seed in 0u64..100_000,
        steps in 5usize..40,
        min_hops in 0u32..2,
        dir_pick in 0usize..3,
        kinds_pick in 1u32..8,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = random_graph(&mut rng, steps);
        let idx = ProvIndex::build(&g);
        let start = VertexId::new(rng.gen_range(0..g.vertex_count()) as u32);
        let dir = [PatternDir::Forward, PatternDir::Backward, PatternDir::Either][dir_pick];
        // Any non-empty subset of the non-agent ancestry/derivation kinds.
        let mut kinds = Vec::new();
        for (bit, kind) in
            [EdgeKind::Used, EdgeKind::WasGeneratedBy, EdgeKind::WasDerivedFrom].iter().enumerate()
        {
            if kinds_pick & (1 << bit) != 0 {
                kinds.push(*kind);
            }
        }
        let end = if rng.gen_bool(0.5) {
            NodeSpec::of_kind(if rng.gen_bool(0.5) { VertexKind::Entity } else { VertexKind::Activity })
        } else {
            NodeSpec::any().with_prop(KEYS[0], "v0")
        };
        let pattern = PathPattern::node(NodeSpec::any().with_ids(vec![start])).then(
            RelSpec::star(&kinds, dir, min_hops, RelSpec::UNBOUNDED),
            end,
        );
        let lowered = lower_pattern(&pattern)
            .expect("single-start unbounded non-agent stars are the lowerable family");

        let outcome = prov_store::pattern::match_paths(&g, &pattern, Budget::default());
        prop_assert!(outcome.is_complete(), "reference must finish in budget for the comparison");
        let mut reference: Vec<VertexId> =
            outcome.paths().iter().map(|p| *p.vertices.last().unwrap()).collect();
        reference.sort_unstable();
        reference.dedup();

        for threads in CHUNKS {
            let ir = eval_rows(&g, &idx, lowered.clone(), threads);
            prop_assert_eq!(&ir, &reference, "chunks {}", threads);
        }
    }

    /// Bounded replay: evaluating over a grown snapshot at an old watermark
    /// equals evaluating over the old snapshot itself — the structural
    /// half of cursor stability, at every chunk count.
    #[test]
    fn replay_at_watermark_matches_old_snapshot(
        seed in 0u64..100_000,
        steps_before in 5usize..30,
        steps_after in 1usize..30,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut g = random_graph(&mut rng, steps_before);
        let old_idx = ProvIndex::build(&g);
        let watermark = g.cursor();
        // Grow (reusing the same generator over the same graph).
        for step in 0..steps_after {
            let a = g.add_activity(&format!("post-a{step}"));
            let used = VertexId::new(rng.gen_range(0..watermark.vertices));
            let _ = g.add_edge(EdgeKind::Used, a, used);
            let e = g.add_entity(&format!("post-e{step}"));
            let _ = g.add_edge(EdgeKind::WasGeneratedBy, e, a);
        }
        let new_idx = ProvIndex::build(&g);
        let start = VertexId::new(rng.gen_range(0..watermark.vertices));
        for pipeline in [
            Pipeline::from_ids(vec![start]).traverse(
                &[(EdgeKind::Used, prov_store::Direction::In),
                  (EdgeKind::WasGeneratedBy, prov_store::Direction::In)],
                1, u32::MAX,
            ),
            Pipeline::from_kind(VertexKind::Entity).traverse(
                &[(EdgeKind::Used, prov_store::Direction::In)],
                0, 2,
            ),
        ] {
            let plan = Plan::compile(pipeline).unwrap();
            let over_old =
                evaluate_with_frontier_min(&g, &old_idx, &plan, watermark, 1, 0).unwrap();
            for threads in CHUNKS {
                let replayed =
                    evaluate_with_frontier_min(&g, &new_idx, &plan, watermark, threads, 0).unwrap();
                prop_assert_eq!(&replayed.rows, &over_old.rows, "chunks {}", threads);
            }
        }
    }
}
