//! Differential suite (ISSUE 6): the level-parallel lineage BFS must produce
//! byte-identical output — the sorted, start-excluded closure or ring — to
//! the sequential epoch-scratch engine, on random `Pd` workload graphs, at
//! every thread count, under every bound, in both directions.
//!
//! `frontier_min = 0` forces the chunked fan-out/merge path on *every* BFS
//! level, so even graphs whose frontiers never reach the production
//! threshold exercise the parallel machinery (this is also what the TSan CI
//! lane runs under).

use proptest::prelude::*;
use prov_core::{
    lineage_over, lineage_over_par, lineage_over_par_with_frontier_min, lineage_reference,
    LineageBound, LineageDirection,
};
use prov_model::VertexId;
use prov_store::ProvIndex;
use prov_workload::{generate_pd, PdParams};

/// Chunk counts exercised for every query; chunk counts control the fan-out
/// shape, so these are meaningful even on a smaller pool.
const THREADS: [usize; 4] = [1, 2, 4, 8];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn parallel_lineage_matches_sequential_on_pd(
        n in 60usize..300,
        seed in 0u64..1_000,
        se in 1.1f64..2.1,
        start_pick in any::<prop::sample::Index>(),
        hops in 0u32..8,
    ) {
        let graph = generate_pd(&PdParams { n, seed, se, ..PdParams::default() });
        let idx = ProvIndex::build(&graph);
        let start = VertexId::new(start_pick.index(idx.vertex_count()) as u32);
        for dir in [LineageDirection::Ancestors, LineageDirection::Descendants] {
            for bound in [
                LineageBound::Unbounded,
                LineageBound::Within(hops),
                LineageBound::Exactly(hops),
            ] {
                let seq = lineage_over(&idx, start, dir, bound);
                for threads in THREADS {
                    let par =
                        lineage_over_par_with_frontier_min(&idx, start, dir, bound, threads, 0);
                    prop_assert_eq!(
                        &par, &seq,
                        "dir={:?} bound={:?} threads={}", dir, bound, threads
                    );
                }
            }
            // The frozen seed path pins the unbounded closure independently.
            prop_assert_eq!(
                lineage_over_par_with_frontier_min(&idx, start, dir, LineageBound::Unbounded, 4, 0),
                lineage_reference(&idx, start, dir)
            );
        }
    }

    /// The production entry point (inline threshold in force) must agree
    /// with the sequential engine too — levels below [`prov_core::PAR_FRONTIER_MIN`]
    /// take the inline step, levels above fan out, and the seam between the
    /// two regimes must not show in the answer.
    #[test]
    fn production_threshold_seam_is_invisible(
        n in 200usize..400,
        seed in 0u64..1_000,
        start_pick in any::<prop::sample::Index>(),
    ) {
        let graph = generate_pd(&PdParams { n, seed, ..PdParams::default() });
        let idx = ProvIndex::build(&graph);
        let start = VertexId::new(start_pick.index(idx.vertex_count()) as u32);
        for dir in [LineageDirection::Ancestors, LineageDirection::Descendants] {
            let seq = lineage_over(&idx, start, dir, LineageBound::Unbounded);
            for threads in THREADS {
                prop_assert_eq!(
                    &lineage_over_par(&idx, start, dir, LineageBound::Unbounded, threads),
                    &seq,
                    "threads={}", threads
                );
            }
        }
    }
}

/// Out-of-range starts short-circuit in the parallel engine exactly like the
/// sequential one (empty, no panic).
#[test]
fn out_of_range_start_is_empty_in_parallel_too() {
    let graph = generate_pd(&PdParams { n: 40, seed: 7, ..PdParams::default() });
    let idx = ProvIndex::build(&graph);
    assert!(lineage_over_par_with_frontier_min(
        &idx,
        VertexId::new(1_000_000),
        LineageDirection::Ancestors,
        LineageBound::Unbounded,
        4,
        0,
    )
    .is_empty());
}
