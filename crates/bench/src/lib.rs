//! Benchmark harness for the Fig. 5 reproduction (see `DESIGN.md` §4).
//!
//! * [`harness`] — one function per subplot, printable as text tables, plus
//!   the worklist ablation (`wl`) and the shared [`PdCache`] so a batch run
//!   freezes each workload once;
//! * [`report`] — the `BENCH_fig5.json` document model and the >2× regression
//!   gate CI applies against the committed baseline;
//! * `src/bin/figure.rs` — CLI that regenerates any figure
//!   (`cargo run -p prov-bench --release --bin figure -- 5a`) and the JSON
//!   bench mode (`cargo run -p prov-bench --release -- --quick --json
//!   BENCH_fig5.json`);
//! * `benches/` — Criterion micro-benchmarks over the same kernels.

pub mod harness;
pub mod report;

pub use harness::{
    run_figure, run_figure_cached, FigureResult, PdCache, Point, Scale, Series, ALL_FIGURES,
    BENCH_FIGURES,
};
pub use report::{BenchReport, REGRESSION_FACTOR, REGRESSION_FLOOR_SECS};
