//! The durable-ingest and lazy-decode benchmarks (`10a`/`10b`, ISSUE 10).
//!
//! * **10a — group-commit ingest throughput.** Drive a fixed activity stream
//!   into a durable [`ProvDb`], one committed batch per activity, sweeping
//!   the [`DurabilityPolicy`] group window (batches per flush). On the real
//!   filesystem backend (`StdIo`, fsync-per-flush) the window amortizes the
//!   dominant fsync cost, so runtime must fall monotonically as the window
//!   grows; the in-memory control series (`MemIo`, fsync is a no-op) pins
//!   the pipeline's own buffering overhead to ~flat. Each point's `work`
//!   fingerprint is the engine's fsync count — the batches-per-fsync
//!   amortization is visible in the committed JSON itself, not just in the
//!   timings.
//!
//! * **10b — cold start, eager vs lazy snapshot decode.** Freeze a fully
//!   compacted, property-heavy disk, then time `open → serving snapshot`
//!   under both [`prov_store::storage::SnapshotDecode`] modes. Lazy decode materializes only the
//!   structural columns (interner, vertices, edges, index declarations) and
//!   leaves the property columns on disk behind the `ColumnSource`, so its
//!   cold start must beat the full decode; `work` carries the recovered
//!   vertex count as the cross-checkable equality fingerprint.
//!
//! The committed trajectory (`BENCH_fig10.json`) gates both the same way
//! fig5–fig8 and coldstart do: a >2× slowdown of any point against its
//! committed baseline fails CI.

use crate::harness::{FigureResult, Point, Scale, Series};
use prov_core::{ActivityRecord, DurabilityPolicy, OutputSpec, ProvDb};
use prov_model::VertexId;
use prov_store::storage::{MemIo, StdIo};
use prov_workload::{ActivityStream, StreamParams};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Root artifacts seeded before the stream (its recency universe floor).
const ROOTS: usize = 8;

/// Drive `acts` deterministic streamed activities into `db`, one committed
/// batch per activity, attaching properties to every activity and output so
/// the snapshot's property columns carry real weight (what 10b defers).
fn ingest_props(db: &mut ProvDb, acts: usize) {
    let mut pool: Vec<VertexId> = (0..ROOTS)
        .map(|r| db.add_artifact_version(&format!("root-{r}"), None).expect("fresh root"))
        .collect();
    let mut stream = ActivityStream::new(StreamParams::default(), ROOTS + acts * 2);
    for (i, record) in stream.batch(pool.len(), acts).into_iter().enumerate() {
        let inputs: Vec<VertexId> =
            record.input_ranks.iter().map(|&r| pool[pool.len() - r]).collect();
        let outcome = db
            .record_activity(ActivityRecord {
                command: record.command,
                agent: None,
                inputs,
                outputs: record
                    .outputs
                    .iter()
                    .map(|a| {
                        OutputSpec::named(a)
                            .with("step", i as i64)
                            .with("tool", format!("stage-{}", i % 7))
                    })
                    .collect(),
                props: vec![("seq".into(), (i as i64).into()), ("host".into(), "bench".into())],
            })
            .expect("streamed ingest is valid");
        pool.extend(outcome.outputs);
    }
}

/// A scratch directory for one `StdIo`-backed run, unique per process and
/// call. Removed by [`Scratch::drop`].
struct Scratch(std::path::PathBuf);

impl Scratch {
    fn new() -> Scratch {
        static SERIAL: AtomicU64 = AtomicU64::new(0);
        let n = SERIAL.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("prov-fig10-{}-{n}", std::process::id()));
        Scratch(dir)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        // lint-ok(raw-io): bench scratch-dir cleanup, nothing durable here.
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Time ingesting `acts` activities through the group-commit pipeline with
/// the given window, ending with an explicit durability barrier. Returns
/// (seconds, fsyncs performed).
fn time_grouped_ingest(open: &dyn Fn() -> ProvDb, acts: usize) -> (f64, u64) {
    let mut db = open();
    let t0 = Instant::now();
    ingest_props(&mut db, acts);
    db.flush().expect("final group flushes");
    let secs = t0.elapsed().as_secs_f64();
    (secs, db.durability_counters().expect("durable db").fsyncs)
}

/// The group-commit ingest figure: runtime for a fixed durable ingest,
/// sweeping the group window.
pub fn fig10a(scale: Scale) -> FigureResult {
    let (acts, windows): (usize, &[u32]) = match scale {
        Scale::Quick => (240, &[1, 2, 4, 8]),
        Scale::Full => (1_500, &[1, 2, 4, 8, 16, 32]),
    };
    let mut series = [
        Series { name: "StdIo".into(), points: Vec::new() },
        Series { name: "MemIo".into(), points: Vec::new() },
    ];
    for &window in windows {
        let policy = DurabilityPolicy::never_compact().with_group_batches(window);
        let mut best = [f64::INFINITY; 2];
        let mut work = [0u64; 2];
        for _ in 0..3 {
            let scratch = Scratch::new();
            let p = policy.clone();
            let dir = scratch.0.clone();
            let std_open = move || {
                ProvDb::open_with_io(
                    Box::new(StdIo::open(&dir).expect("scratch dir opens")),
                    p.clone(),
                )
                .expect("fresh disk opens")
            };
            let p = policy.clone();
            let mem_open = move || {
                ProvDb::open_with_io(Box::new(MemIo::new()), p.clone()).expect("fresh mem opens")
            };
            let runs = [time_grouped_ingest(&std_open, acts), time_grouped_ingest(&mem_open, acts)];
            for (i, (secs, fsyncs)) in runs.into_iter().enumerate() {
                best[i] = best[i].min(secs);
                work[i] = fsyncs;
            }
        }
        for i in 0..2 {
            series[i].points.push(Point {
                x: f64::from(window),
                y: Some(best[i]),
                work: Some(work[i]),
            });
        }
    }
    FigureResult {
        id: "10a",
        title: format!(
            "Durable ingest of {acts} activities (one committed batch each) sweeping the \
             group-commit window: fsync-per-flush filesystem backend vs in-memory control; \
             `work` = fsyncs performed"
        ),
        x_label: "group window (batches/flush)".into(),
        y_label: "runtime (s)".into(),
        series: series.to_vec(),
    }
}

/// A fully compacted, property-heavy frozen disk: every batch folded into
/// one segmented snapshot, empty WAL tail. The database is dropped — cold
/// start means nothing is warm.
fn frozen_compacted_disk(acts: usize) -> MemIo {
    let disk = MemIo::new();
    let mut db = ProvDb::open_with_io(Box::new(disk.clone()), DurabilityPolicy::never_compact())
        .expect("fresh disk opens");
    ingest_props(&mut db, acts);
    assert!(db.compact().expect("durable db compacts"), "bench disk must compact");
    drop(db);
    disk
}

/// Time one cold start from `disk` under `policy`: open (decode snapshot,
/// replay the empty tail, build the index) and acquire the serving snapshot
/// — without touching any property column. Returns (seconds, vertex count).
fn time_open(disk: &MemIo, policy: &DurabilityPolicy) -> (f64, u64) {
    let t0 = Instant::now();
    let db = ProvDb::open_with_io(Box::new(disk.clone()), policy.clone())
        .expect("committed state recovers");
    let snapshot = db.snapshot();
    let secs = t0.elapsed().as_secs_f64();
    drop(snapshot);
    (secs, db.graph().vertex_count() as u64)
}

/// The lazy-decode cold-start figure: eager full decode vs structural-only
/// lazy decode of the same frozen snapshot.
pub fn fig10b(scale: Scale) -> FigureResult {
    let sizes: &[usize] = match scale {
        Scale::Quick => &[500, 2_000, 5_000],
        Scale::Full => &[2_000, 10_000, 50_000],
    };
    let eager = DurabilityPolicy::never_compact();
    let lazy = DurabilityPolicy::never_compact().with_lazy_decode();
    let mut series = [
        Series { name: "EagerDecode".into(), points: Vec::new() },
        Series { name: "LazyDecode".into(), points: Vec::new() },
    ];
    for &acts in sizes {
        let disk = frozen_compacted_disk(acts);
        let mut best = [f64::INFINITY; 2];
        let mut work = [0u64; 2];
        for _ in 0..3 {
            let runs = [time_open(&disk, &eager), time_open(&disk, &lazy)];
            for (i, (secs, w)) in runs.into_iter().enumerate() {
                best[i] = best[i].min(secs);
                work[i] = w;
            }
        }
        for i in 0..2 {
            series[i].points.push(Point { x: acts as f64, y: Some(best[i]), work: Some(work[i]) });
        }
    }
    FigureResult {
        id: "10b",
        title: "Cold start to serving state from a fully compacted property-heavy snapshot: \
                eager full decode vs lazy structural-only decode (property columns stay on \
                disk until first touch)"
            .into(),
        x_label: "activities".into(),
        y_label: "runtime (s)".into(),
        series: series.to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_window_amortizes_fsyncs_on_the_real_backend() {
        let acts = 24;
        let scratch = Scratch::new();
        let dir = scratch.0.clone();
        let policy = DurabilityPolicy::never_compact().with_group_batches(8);
        let open = move || {
            ProvDb::open_with_io(
                Box::new(StdIo::open(&dir).expect("scratch dir opens")),
                policy.clone(),
            )
            .expect("fresh disk opens")
        };
        let (_, fsyncs) = time_grouped_ingest(&open, acts);
        // ROOTS + acts batches, window 8: far fewer fsyncs than batches.
        let batches = (ROOTS + acts) as u64;
        assert!(fsyncs * 2 <= batches, "{fsyncs} fsyncs for {batches} batches is not grouped");
        assert!(fsyncs >= batches / 8, "fsyncs can't undercut the window");
    }

    #[test]
    fn eager_and_lazy_cold_starts_recover_the_identical_state() {
        let disk = frozen_compacted_disk(48);
        let eager = ProvDb::open_with_io(Box::new(disk.clone()), DurabilityPolicy::never_compact())
            .unwrap();
        let lazy = ProvDb::open_with_io(
            Box::new(disk.clone()),
            DurabilityPolicy::never_compact().with_lazy_decode(),
        )
        .unwrap();
        // Lazy really deferred its property columns at open...
        let c = lazy.durability_counters().unwrap();
        assert_eq!(c.lazy_segments_deferred, 2);
        assert_eq!(c.lazy_segment_loads, 0);
        assert!(c.lazy_deferred_bytes > 0, "property-heavy disk must defer real bytes");
        // ...and still serves the byte-identical graph once touched.
        assert_eq!(eager.graph(), lazy.graph());
        assert_eq!(*eager.snapshot(), *lazy.snapshot());
        assert_eq!(lazy.durability_counters().unwrap().lazy_segment_loads, 2);
    }
}
