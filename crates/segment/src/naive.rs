//! Naive Cypher-style evaluation: materialize all ancestry paths, then join.
//!
//! This reproduces the handcrafted Cypher query of Sec. III-B (Query 1) as
//! Neo4j executed it: hold every `<-[:U|G*]-` path from the anchors in path
//! variables, then join path pairs on node-by-node label equality. The cost is
//! exponential in path length × branching — the paper reports correct results
//! only on ~50-vertex graphs and >12 hours beyond that. A budget converts the
//! blow-up into an honest DNF report.
//!
//! Faithfulness note: the published Cypher allows the two joined paths to
//! start at *different* destination anchors; SimProv's palindrome pivots both
//! sides on the *same* `vj`. We join per-`vj` so this evaluator computes the
//! same answer as the other three (required by the differential tests).

use crate::outcome::{EvalStats, SimilarOutcome};
use crate::view::MaskedGraph;
use prov_model::{VertexId, VertexKind};
use prov_store::hash::FxHashSet;
use std::time::Instant;

/// Budget for the naive evaluator.
#[derive(Debug, Clone, Copy)]
pub struct NaiveBudget {
    /// Maximum number of materialized paths per destination.
    pub max_paths: usize,
    /// Maximum number of DFS expansions overall.
    pub max_expansions: u64,
}

impl Default for NaiveBudget {
    fn default() -> Self {
        NaiveBudget { max_paths: 2_000_000, max_expansions: 20_000_000 }
    }
}

/// One materialized ancestry path (vertex sequence; labels are implied by the
/// strict E/A alternation, so joining on length is joining on labels).
type Path = Vec<VertexId>;

/// Enumerate every forward `U`/`G` ancestry path starting at `from`.
/// Returns false when the budget ran out.
fn enumerate_paths(
    view: &MaskedGraph<'_>,
    from: VertexId,
    budget: NaiveBudget,
    expansions: &mut u64,
    out: &mut Vec<Path>,
) -> bool {
    let mut current: Path = vec![from];
    dfs(view, budget, expansions, &mut current, out)
}

fn dfs(
    view: &MaskedGraph<'_>,
    budget: NaiveBudget,
    expansions: &mut u64,
    current: &mut Path,
    out: &mut Vec<Path>,
) -> bool {
    *expansions += 1;
    if *expansions > budget.max_expansions || out.len() >= budget.max_paths {
        return false;
    }
    out.push(current.clone());
    let head = *current.last().expect("non-empty path");
    // Upstream neighbors; the provenance DAG guarantees termination.
    let next: Vec<VertexId> = view.upstream(head).collect();
    for w in next {
        current.push(w);
        let ok = dfs(view, budget, expansions, current, out);
        current.pop();
        if !ok {
            return false;
        }
    }
    true
}

/// Evaluate `L(SimProv)`-reachability by path enumeration and join.
pub fn similar_naive(
    view: &MaskedGraph<'_>,
    vsrc: &[VertexId],
    vdst: &[VertexId],
    budget: NaiveBudget,
) -> SimilarOutcome {
    similar_naive_constrained(view, vsrc, vdst, budget, None)
}

/// Constrained variant: two joined paths must additionally agree, position by
/// position, on the [`crate::alg::ConstraintTable`] fingerprints (reference
/// semantics for the property-constrained SimProv extension).
pub fn similar_naive_constrained(
    view: &MaskedGraph<'_>,
    vsrc: &[VertexId],
    vdst: &[VertexId],
    budget: NaiveBudget,
    constraint: Option<&crate::alg::ConstraintTable>,
) -> SimilarOutcome {
    let t0 = Instant::now();
    let idx = view.index();
    let n = idx.vertex_count();
    let src_set: FxHashSet<VertexId> = vsrc
        .iter()
        .copied()
        .filter(|&v| v.index() < n && view.vertex_ok(v) && idx.kind(v) == VertexKind::Entity)
        .collect();
    let mut marks = vec![false; n];
    let mut vc2 = vec![false; n];
    let mut expansions: u64 = 0;
    let mut total_paths: u64 = 0;
    let mut dnf = false;
    let mut seen_dst = vec![false; n];

    for &vj in vdst {
        if vj.index() >= n
            || seen_dst[vj.index()]
            || !view.vertex_ok(vj)
            || idx.kind(vj) != VertexKind::Entity
        {
            continue;
        }
        seen_dst[vj.index()] = true;
        // The Cypher plan: p2 = ALL ancestry paths from vj (path variable),
        // p1 = the subset of p2 that ends at a source.
        let mut p2: Vec<Path> = Vec::new();
        if !enumerate_paths(view, vj, budget, &mut expansions, &mut p2) {
            dnf = true;
        }
        total_paths += p2.len() as u64;
        // A path's join key: its length for plain SimProv (label equality of
        // two all-U/G ancestry paths is exactly length equality, by the strict
        // E/A alternation), plus the position-wise constraint-fingerprint
        // sequence when a property constraint is active.
        let key = |p: &Path| -> (usize, u64) {
            let sig = match constraint {
                None => 0u64,
                Some(table) => prov_store::hash::fx_hash64(
                    &p.iter().map(|&v| table.fp(v)).collect::<Vec<u64>>(),
                ),
            };
            (p.len(), sig)
        };
        // Accepted keys = keys of p1 paths (ending at a source).
        let accepted: FxHashSet<(usize, u64)> = p2
            .iter()
            .filter(|p| p.len() % 2 == 1 && src_set.contains(p.last().expect("non-empty")))
            .map(&key)
            .collect();
        if accepted.is_empty() {
            continue;
        }
        // Join: every p2 whose key is accepted is a witness side-2 path.
        for p in &p2 {
            if accepted.contains(&key(p)) {
                marks[p.last().expect("non-empty").index()] = true;
                for &v in p {
                    vc2[v.index()] = true;
                }
            }
        }
    }

    SimilarOutcome {
        answer: crate::outcome::marks_to_vec(&marks),
        vc2: Some(crate::outcome::marks_to_vec(&vc2)),
        stats: EvalStats { elapsed: t0.elapsed(), work: total_paths, memory_bytes: 0, dnf },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tst::{similar_tst, TstConfig};
    use prov_model::EdgeKind;
    use prov_store::{ProvGraph, ProvIndex};

    fn fan() -> (ProvGraph, ProvIndex, Vec<VertexId>) {
        // d <- t1 <- m1 ; d <- t2 <- m2 ; {m1,m2,cfg} <- t3 <- w
        let mut g = ProvGraph::new();
        let d = g.add_entity("d");
        let cfg = g.add_entity("cfg");
        let t1 = g.add_activity("t1");
        let m1 = g.add_entity("m1");
        let t2 = g.add_activity("t2");
        let m2 = g.add_entity("m2");
        let t3 = g.add_activity("t3");
        let w = g.add_entity("w");
        g.add_edge(EdgeKind::Used, t1, d).unwrap();
        g.add_edge(EdgeKind::WasGeneratedBy, m1, t1).unwrap();
        g.add_edge(EdgeKind::Used, t2, d).unwrap();
        g.add_edge(EdgeKind::WasGeneratedBy, m2, t2).unwrap();
        g.add_edge(EdgeKind::Used, t3, m1).unwrap();
        g.add_edge(EdgeKind::Used, t3, m2).unwrap();
        g.add_edge(EdgeKind::Used, t3, cfg).unwrap();
        g.add_edge(EdgeKind::WasGeneratedBy, w, t3).unwrap();
        let idx = ProvIndex::build(&g);
        (g, idx, vec![d, cfg, t1, m1, t2, m2, t3, w])
    }

    #[test]
    fn naive_agrees_with_tst_answers_and_vc2() {
        let (_, idx, ids) = fan();
        let view = MaskedGraph::unmasked(&idx);
        let entities: Vec<_> =
            ids.iter().copied().filter(|&v| idx.kind(v) == VertexKind::Entity).collect();
        for &src in &entities {
            for &dst in &entities {
                let nv = similar_naive(&view, &[src], &[dst], NaiveBudget::default());
                let ts = similar_tst(&view, &[src], &[dst], &TstConfig::default());
                assert!(!nv.stats.dnf);
                assert_eq!(nv.answer, ts.answer, "answer src={src} dst={dst}");
                assert_eq!(nv.vc2, ts.vc2, "vc2 src={src} dst={dst}");
            }
        }
    }

    #[test]
    fn sibling_config_in_answer_via_same_level() {
        let (_, idx, ids) = fan();
        let view = MaskedGraph::unmasked(&idx);
        let (cfg, m1, m2, w) = (ids[1], ids[3], ids[5], ids[7]);
        // src = {m1}: level 2 of w = {m1, m2, cfg}: all three are answers.
        let out = similar_naive(&view, &[m1], &[w], NaiveBudget::default());
        assert_eq!(out.answer, vec![cfg, m1, m2]);
    }

    #[test]
    fn budget_exhaustion_reports_dnf() {
        let (_, idx, ids) = fan();
        let view = MaskedGraph::unmasked(&idx);
        let out = similar_naive(
            &view,
            &[ids[0]],
            &[ids[7]],
            NaiveBudget { max_paths: 2, max_expansions: 3 },
        );
        assert!(out.stats.dnf);
    }

    #[test]
    fn path_count_is_exponential_in_fanout() {
        // Chain of diamonds: each level doubles the path count.
        let mut g = ProvGraph::new();
        let mut prev = g.add_entity("e0");
        for i in 0..6 {
            let a1 = g.add_activity(&format!("a{i}x"));
            let a2 = g.add_activity(&format!("a{i}y"));
            let e = g.add_entity(&format!("e{}", i + 1));
            g.add_edge(EdgeKind::Used, a1, prev).unwrap();
            g.add_edge(EdgeKind::Used, a2, prev).unwrap();
            g.add_edge(EdgeKind::WasGeneratedBy, e, a1).unwrap();
            g.add_edge(EdgeKind::WasGeneratedBy, e, a2).unwrap();
            prev = e;
        }
        let idx = ProvIndex::build(&g);
        let view = MaskedGraph::unmasked(&idx);
        let src = VertexId::new(0);
        let out = similar_naive(&view, &[src], &[prev], NaiveBudget::default());
        // 2^6 = 64 full-length paths plus all their prefixes.
        assert!(out.stats.work > 64, "materialized {} paths", out.stats.work);
        assert!(out.answer.contains(&src));
    }
}
