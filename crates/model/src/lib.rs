//! W3C PROV core data model for data science lifecycle provenance.
//!
//! This crate defines the vocabulary of Definition 1 in the paper: a provenance
//! graph is a DAG `G(V, E, λv, λe, σ, ω)` with
//!
//! * three vertex types `V = E ∪ A ∪ U` — [`VertexKind::Entity`],
//!   [`VertexKind::Activity`], [`VertexKind::Agent`];
//! * five edge types `E = U ∪ G ∪ S ∪ A ∪ D` — [`EdgeKind::Used`],
//!   [`EdgeKind::WasGeneratedBy`], [`EdgeKind::WasAssociatedWith`],
//!   [`EdgeKind::WasAttributedTo`], [`EdgeKind::WasDerivedFrom`];
//! * total label functions `λv`, `λe` (the `kind` of each record);
//! * partial property functions `σ` (vertex properties) and `ω` (edge
//!   properties), represented as schema-later key/value pairs
//!   ([`PropValue`], [`PropMap`]).
//!
//! The crate is deliberately storage-agnostic: the actual graph container lives
//! in `prov-store`. Here we keep the typed ids, the kind/label vocabulary, the
//! PROV domain/range rules ([`EdgeKind::endpoints`]) and the W3C PROV term names
//! used by the JSON interchange format.

pub mod ids;
pub mod kind;
pub mod property;

pub use ids::{EdgeId, PropKeyId, VertexId};
pub use kind::{EdgeKind, VertexKind};
pub use property::{PropMap, PropValue};

/// Error raised when an edge would violate the PROV domain/range rules of
/// Sec. II-A (e.g. a `used` edge must go from an Activity to an Entity).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdgeTypeError {
    /// The offending relationship type.
    pub kind: EdgeKind,
    /// Kind of the proposed source vertex.
    pub src: VertexKind,
    /// Kind of the proposed destination vertex.
    pub dst: VertexKind,
}

impl std::fmt::Display for EdgeTypeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (want_src, want_dst) = self.kind.endpoints();
        write!(
            f,
            "edge type {:?} requires {:?} -> {:?}, got {:?} -> {:?}",
            self.kind, want_src, want_dst, self.src, self.dst
        )
    }
}

impl std::error::Error for EdgeTypeError {}

/// Validate the PROV domain/range rule for a single edge.
pub fn check_edge_types(
    kind: EdgeKind,
    src: VertexKind,
    dst: VertexKind,
) -> Result<(), EdgeTypeError> {
    let (want_src, want_dst) = kind.endpoints();
    if src == want_src && dst == want_dst {
        Ok(())
    } else {
        Err(EdgeTypeError { kind, src, dst })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn used_edge_must_be_activity_to_entity() {
        assert!(check_edge_types(EdgeKind::Used, VertexKind::Activity, VertexKind::Entity).is_ok());
        let err =
            check_edge_types(EdgeKind::Used, VertexKind::Entity, VertexKind::Activity).unwrap_err();
        assert_eq!(err.kind, EdgeKind::Used);
        assert!(err.to_string().contains("Used"));
    }

    #[test]
    fn all_edge_kinds_accept_their_declared_endpoints() {
        for kind in EdgeKind::ALL {
            let (s, d) = kind.endpoints();
            assert!(check_edge_types(kind, s, d).is_ok());
        }
    }

    #[test]
    fn derivation_is_entity_to_entity() {
        assert!(check_edge_types(EdgeKind::WasDerivedFrom, VertexKind::Entity, VertexKind::Entity)
            .is_ok());
        assert!(check_edge_types(
            EdgeKind::WasDerivedFrom,
            VertexKind::Activity,
            VertexKind::Entity
        )
        .is_err());
    }
}
