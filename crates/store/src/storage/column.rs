//! The segmented columnar snapshot format and its lazy decoder.
//!
//! ## Format (`PROVSEG1`)
//!
//! ```text
//! [8-byte magic "PROVSEG1"][u32 dir_len][u32 crc32(dir)][dir][segments...]
//! ```
//!
//! The directory holds `u64 seq` (commit sequence the image covers), a `u32`
//! segment count, then one `(u8 id, u64 offset, u32 len, u32 crc)` entry per
//! segment. Segments are laid out in id order, contiguously, starting right
//! after the directory and covering the file exactly — so a range read of
//! `[offset, offset + len)` is one column, checkable in isolation against
//! its own CRC.
//!
//! | id | segment  | contents                                            |
//! |----|----------|-----------------------------------------------------|
//! | 0  | interner | key names in id order                               |
//! | 1  | vertices | kind + optional name per vertex (births implicit)   |
//! | 2  | edges    | kind, src, dst per edge                             |
//! | 3  | vprops   | `(vertex, key id, value)` triples                   |
//! | 4  | eprops   | `(edge, key id, value)` triples                     |
//! | 5  | indexes  | declared secondary indexes as `(kind, key id)`      |
//!
//! ## Decode modes
//!
//! *Eager* ([`decode_eager`]) reads and CRC-checks every segment at open —
//! any corrupted byte fails the open, exactly like the old monolithic
//! format. *Lazy* ([`recover_snapshot`] with [`SnapshotDecode::Lazy`])
//! decodes only the structural segments (interner, vertices, edges, index
//! declarations) and attaches a [`PropLoader`] that range-reads the property
//! segments through a [`ColumnSource`] on the first property touch — cold
//! start is O(structural columns), and a graph whose property columns dwarf
//! RAM opens without materializing them. The price: corruption inside a
//! deferred segment surfaces at first touch, not at open.
//!
//! This module (not the storage engine) owns every read of snapshot bytes:
//! backends that can serve real range reads do ([`super::StdIo`] keeps an
//! open descriptor, [`super::MemIo`] slices in place), and the buffered
//! fallback below is the one full-file snapshot read outside the backends —
//! the `snapshot-slurp` lint rule in `prov-check` keeps it that way.

use super::codec::{crc32, put_prop_value, put_str, put_u32, put_u64, put_u8, Reader};
use super::io::{ColumnSource, Io, IoResult};
use super::SnapshotDecode;
use crate::graph::{LoadedColumns, PropLoader, ProvGraph};
use prov_model::{EdgeId, EdgeKind, PropKeyId, PropValue, VertexId, VertexKind};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const MAGIC: &[u8; 8] = b"PROVSEG1";
/// Magic + directory length + directory CRC.
const HEADER_BYTES: usize = 16;
/// Bytes per directory entry: id + offset + len + crc.
const DIR_ENTRY_BYTES: usize = 1 + 8 + 4 + 4;

const SEG_INTERNER: usize = 0;
const SEG_VERTICES: usize = 1;
const SEG_EDGES: usize = 2;
const SEG_VPROPS: usize = 3;
const SEG_EPROPS: usize = 4;
const SEG_INDEXES: usize = 5;
const SEG_COUNT: usize = 6;
const SEG_NAMES: [&str; SEG_COUNT] =
    ["interner", "vertices", "edges", "vprops", "eprops", "indexes"];

/// One directory entry: where a segment lives and what it must hash to.
#[derive(Debug, Clone, Copy)]
pub struct Segment {
    /// Absolute byte offset of the segment payload.
    pub offset: u64,
    /// Payload length in bytes.
    pub len: u32,
    /// CRC-32 of the payload.
    pub crc: u32,
}

/// The decoded snapshot directory.
#[derive(Debug, Clone)]
pub struct Directory {
    /// Commit sequence number the image covers.
    pub seq: u64,
    /// Per-segment entries, indexed by segment id.
    pub segments: [Segment; SEG_COUNT],
}

/// Counters for the lazy-decode machinery, shared between the storage
/// engine (which reports them) and the deferred loader (which bumps them).
#[derive(Debug, Default)]
pub struct LazyStats {
    /// Property segments whose decode was deferred at open.
    pub segments_deferred: AtomicU64,
    /// Bytes of deferred (not read at open) segment payload.
    pub deferred_bytes: AtomicU64,
    /// Deferred segments loaded on first touch.
    pub segment_loads: AtomicU64,
    /// Bytes range-read by first-touch loads.
    pub bytes_loaded: AtomicU64,
}

// ---------------------------------------------------------------------
// Encode
// ---------------------------------------------------------------------

/// Encode `graph` (whose durable state ends at commit `seq`) as a segmented
/// snapshot image. Reads properties through the graph's *effective*
/// accessors, so encoding a still-lazy graph materializes its overlay first.
pub fn encode(graph: &ProvGraph, seq: u64) -> Vec<u8> {
    let segments: [Vec<u8>; SEG_COUNT] = [
        encode_interner(graph),
        encode_vertices(graph),
        encode_edges(graph),
        encode_vprops(graph),
        encode_eprops(graph),
        encode_indexes(graph),
    ];
    let mut dir = Vec::with_capacity(12 + DIR_ENTRY_BYTES * SEG_COUNT);
    put_u64(&mut dir, seq);
    // lint-ok(narrowing-cast): SEG_COUNT is 6.
    put_u32(&mut dir, SEG_COUNT as u32);
    let mut offset = (HEADER_BYTES + 12 + DIR_ENTRY_BYTES * SEG_COUNT) as u64;
    for (id, payload) in segments.iter().enumerate() {
        // lint-ok(narrowing-cast): id is 0..6.
        put_u8(&mut dir, id as u8);
        put_u64(&mut dir, offset);
        // lint-ok(narrowing-cast): a 4 GiB column cannot fit the dense id space.
        put_u32(&mut dir, payload.len() as u32);
        put_u32(&mut dir, crc32(payload));
        offset += payload.len() as u64;
    }
    let mut out = Vec::with_capacity(offset as usize);
    out.extend_from_slice(MAGIC);
    // lint-ok(narrowing-cast): the directory is 126 bytes.
    put_u32(&mut out, dir.len() as u32);
    put_u32(&mut out, crc32(&dir));
    out.extend_from_slice(&dir);
    for payload in &segments {
        out.extend_from_slice(payload);
    }
    out
}

fn encode_interner(graph: &ProvGraph) -> Vec<u8> {
    let mut out = Vec::new();
    // lint-ok(narrowing-cast): key cardinality is far below u32::MAX.
    put_u32(&mut out, graph.interner().len() as u32);
    for (_, name) in graph.interner().iter() {
        put_str(&mut out, name);
    }
    out
}

fn encode_vertices(graph: &ProvGraph) -> Vec<u8> {
    let mut out = Vec::new();
    // lint-ok(narrowing-cast): the store bounds vertex count below u32::MAX.
    put_u32(&mut out, graph.vertex_count() as u32);
    for v in graph.vertex_ids() {
        let rec = graph.vertex(v);
        // lint-ok(narrowing-cast): VertexKind::as_index is 0..3.
        put_u8(&mut out, rec.kind.as_index() as u8);
        match &rec.name {
            Some(n) => {
                put_u8(&mut out, 1);
                put_str(&mut out, n);
            }
            None => put_u8(&mut out, 0),
        }
    }
    out
}

fn encode_edges(graph: &ProvGraph) -> Vec<u8> {
    let mut out = Vec::new();
    // lint-ok(narrowing-cast): the store bounds edge count below u32::MAX.
    put_u32(&mut out, graph.edge_count() as u32);
    for e in graph.edge_ids() {
        let rec = graph.edge(e);
        // lint-ok(narrowing-cast): EdgeKind::as_index is 0..5.
        put_u8(&mut out, rec.kind.as_index() as u8);
        put_u32(&mut out, rec.src.raw());
        put_u32(&mut out, rec.dst.raw());
    }
    out
}

fn encode_vprops(graph: &ProvGraph) -> Vec<u8> {
    let triples: Vec<_> = graph
        .vertex_ids()
        .flat_map(|v| graph.vertex_props(v).iter().map(move |(k, val)| (v, k, val.clone())))
        .collect();
    let mut out = Vec::new();
    // lint-ok(narrowing-cast): bounded by vertices × small prop counts.
    put_u32(&mut out, triples.len() as u32);
    for (v, k, val) in &triples {
        put_u32(&mut out, v.raw());
        put_u32(&mut out, k.raw());
        put_prop_value(&mut out, val);
    }
    out
}

fn encode_eprops(graph: &ProvGraph) -> Vec<u8> {
    let triples: Vec<_> = graph
        .edge_ids()
        .flat_map(|e| graph.edge_props(e).iter().map(move |(k, val)| (e, k, val.clone())))
        .collect();
    let mut out = Vec::new();
    // lint-ok(narrowing-cast): bounded by edges × small prop counts.
    put_u32(&mut out, triples.len() as u32);
    for (e, k, val) in &triples {
        put_u32(&mut out, e.raw());
        put_u32(&mut out, k.raw());
        put_prop_value(&mut out, val);
    }
    out
}

fn encode_indexes(graph: &ProvGraph) -> Vec<u8> {
    let declared = graph.declared_vprop_indexes();
    let mut out = Vec::new();
    // lint-ok(narrowing-cast): kinds × keys is tiny.
    put_u32(&mut out, declared.len() as u32);
    for (kind, key) in &declared {
        // lint-ok(narrowing-cast): VertexKind::as_index is 0..3.
        put_u8(&mut out, kind.as_index() as u8);
        put_u32(&mut out, key.raw());
    }
    out
}

// ---------------------------------------------------------------------
// Directory + segment reads
// ---------------------------------------------------------------------

fn range(
    source: &dyn ColumnSource,
    offset: u64,
    len: usize,
    what: &str,
) -> Result<Vec<u8>, String> {
    source.read_range(offset, len).map_err(|e| format!("{what}: {e}"))
}

/// Read and verify the snapshot directory through `source`.
pub fn read_directory(source: &dyn ColumnSource) -> Result<Directory, String> {
    let total = source.len();
    if total < HEADER_BYTES as u64 {
        return Err(format!("snapshot too short ({total} bytes)"));
    }
    let header = range(source, 0, HEADER_BYTES, "snapshot header")?;
    if &header[..MAGIC.len()] != MAGIC {
        return Err("bad snapshot magic".to_string());
    }
    let mut r = Reader::new(&header[MAGIC.len()..]);
    let dir_len = r.u32("directory length")? as usize;
    let dir_crc = r.u32("directory crc")?;
    if total < (HEADER_BYTES + dir_len) as u64 {
        return Err(format!("snapshot directory truncated ({total} bytes, directory {dir_len})"));
    }
    let dir = range(source, HEADER_BYTES as u64, dir_len, "snapshot directory")?;
    if crc32(&dir) != dir_crc {
        return Err("snapshot directory crc mismatch".to_string());
    }
    let mut r = Reader::new(&dir);
    let seq = r.u64("snapshot seq")?;
    let count = r.u32("segment count")?;
    // lint-ok(narrowing-cast): SEG_COUNT is 6.
    if count != SEG_COUNT as u32 {
        return Err(format!("snapshot has {count} segments, expected {SEG_COUNT}"));
    }
    let mut segments = [Segment { offset: 0, len: 0, crc: 0 }; SEG_COUNT];
    let mut expect = (HEADER_BYTES + dir_len) as u64;
    for (id, slot) in segments.iter_mut().enumerate() {
        let got = r.u8("segment id")?;
        if got as usize != id {
            return Err(format!("segment {id} misfiled as id {got}"));
        }
        let offset = r.u64("segment offset")?;
        if offset != expect {
            return Err(format!("segment {id} at offset {offset}, expected {expect}"));
        }
        let len = r.u32("segment length")?;
        let crc = r.u32("segment crc")?;
        expect += len as u64;
        *slot = Segment { offset, len, crc };
    }
    if !r.is_exhausted() {
        return Err(format!("{} trailing directory bytes", r.remaining()));
    }
    if expect != total {
        return Err(format!("segments cover {expect} bytes of a {total}-byte snapshot"));
    }
    Ok(Directory { seq, segments })
}

/// Read one segment's payload and verify its CRC.
fn read_segment(source: &dyn ColumnSource, dir: &Directory, id: usize) -> Result<Vec<u8>, String> {
    let seg = dir.segments[id];
    let what = SEG_NAMES[id];
    let bytes = range(source, seg.offset, seg.len as usize, what)?;
    if crc32(&bytes) != seg.crc {
        return Err(format!("{what} segment crc mismatch"));
    }
    Ok(bytes)
}

// ---------------------------------------------------------------------
// Segment decoders
// ---------------------------------------------------------------------

/// Decode the structural segments (interner, vertices, edges, index
/// declarations) into a property-less graph, replaying through the ordinary
/// mutators so every derived structure matches a live build. Returns the
/// graph, the interned key names in id order, and the declared indexes.
#[allow(clippy::type_complexity)]
fn decode_structure(
    source: &dyn ColumnSource,
    dir: &Directory,
) -> Result<(ProvGraph, Vec<Arc<str>>, Vec<(VertexKind, Arc<str>)>), String> {
    let mut g = ProvGraph::new();
    // Interner, in id order, so key ids referenced by other segments resolve
    // and replayed interning matches the encoded graph exactly.
    let bytes = read_segment(source, dir, SEG_INTERNER)?;
    let mut r = Reader::new(&bytes);
    let key_count = r.u32("key count")?;
    let mut key_names = Vec::with_capacity(key_count as usize);
    for i in 0..key_count {
        let name = r.str("key name")?;
        let id = g.key(&name);
        if id.raw() != i {
            return Err(format!("key {name:?} interned as {id:?}, expected id {i}"));
        }
        key_names.push(name);
    }
    exhausted(&r, SEG_INTERNER)?;
    // Vertices.
    let bytes = read_segment(source, dir, SEG_VERTICES)?;
    let mut r = Reader::new(&bytes);
    let n = r.u32("vertex count")?;
    for i in 0..n {
        let kind_raw = r.u8("vertex kind")?;
        let kind = VertexKind::from_index(kind_raw as usize)
            .ok_or_else(|| format!("vertex {i}: unknown kind {kind_raw}"))?;
        let name = match r.u8("vertex name flag")? {
            0 => None,
            1 => Some(r.str("vertex name")?),
            f => return Err(format!("vertex {i}: bad name flag {f}")),
        };
        g.add_vertex(kind, name.as_deref()).map_err(|e| format!("vertex {i}: {e}"))?;
    }
    exhausted(&r, SEG_VERTICES)?;
    // Edges.
    let bytes = read_segment(source, dir, SEG_EDGES)?;
    let mut r = Reader::new(&bytes);
    let m = r.u32("edge count")?;
    for i in 0..m {
        let kind_raw = r.u8("edge kind")?;
        let kind = EdgeKind::from_index(kind_raw as usize)
            .ok_or_else(|| format!("edge {i}: unknown kind {kind_raw}"))?;
        let src = VertexId::new(r.u32("edge src")?);
        let dst = VertexId::new(r.u32("edge dst")?);
        g.add_edge(kind, src, dst).map_err(|e| format!("edge {i}: {e}"))?;
    }
    exhausted(&r, SEG_EDGES)?;
    // Declared indexes (tiny — always decoded; the *backfill* is what lazy
    // mode defers).
    let bytes = read_segment(source, dir, SEG_INDEXES)?;
    let mut r = Reader::new(&bytes);
    let idx_count = r.u32("index count")?;
    let mut declared = Vec::with_capacity(idx_count as usize);
    for i in 0..idx_count {
        let kind_raw = r.u8("index kind")?;
        let kind = VertexKind::from_index(kind_raw as usize)
            .ok_or_else(|| format!("index {i}: unknown kind {kind_raw}"))?;
        let key = r.u32("index key")?;
        let name = key_names
            .get(key as usize)
            .ok_or_else(|| format!("index {i} names unknown key {key}"))?;
        declared.push((kind, name.clone()));
    }
    exhausted(&r, SEG_INDEXES)?;
    Ok((g, key_names, declared))
}

fn exhausted(r: &Reader<'_>, id: usize) -> Result<(), String> {
    if r.is_exhausted() {
        Ok(())
    } else {
        Err(format!("{} trailing bytes in {} segment", r.remaining(), SEG_NAMES[id]))
    }
}

fn decode_vprops(
    bytes: &[u8],
    n: u32,
    key_count: u32,
) -> Result<Vec<(VertexId, PropKeyId, PropValue)>, String> {
    let mut r = Reader::new(bytes);
    let count = r.u32("vprop count")?;
    let mut out = Vec::with_capacity(count as usize);
    for i in 0..count {
        let v = r.u32("vprop vertex")?;
        if v >= n {
            return Err(format!("vprop {i} names unknown vertex {v}"));
        }
        let k = r.u32("vprop key")?;
        if k >= key_count {
            return Err(format!("vprop {i} names unknown key {k}"));
        }
        let value = r.prop_value("vprop value")?;
        out.push((VertexId::new(v), PropKeyId::new(k), value));
    }
    exhausted(&r, SEG_VPROPS)?;
    Ok(out)
}

fn decode_eprops(
    bytes: &[u8],
    m: u32,
    key_count: u32,
) -> Result<Vec<(EdgeId, PropKeyId, PropValue)>, String> {
    let mut r = Reader::new(bytes);
    let count = r.u32("eprop count")?;
    let mut out = Vec::with_capacity(count as usize);
    for i in 0..count {
        let e = r.u32("eprop edge")?;
        if e >= m {
            return Err(format!("eprop {i} names unknown edge {e}"));
        }
        let k = r.u32("eprop key")?;
        if k >= key_count {
            return Err(format!("eprop {i} names unknown key {k}"));
        }
        let value = r.prop_value("eprop value")?;
        out.push((EdgeId::new(e), PropKeyId::new(k), value));
    }
    exhausted(&r, SEG_EPROPS)?;
    Ok(out)
}

// ---------------------------------------------------------------------
// Decode entry points
// ---------------------------------------------------------------------

/// [`ColumnSource`] over a borrowed byte slice (eager in-memory decode).
#[derive(Debug)]
struct SliceSource<'a>(&'a [u8]);

impl ColumnSource for SliceSource<'_> {
    fn len(&self) -> u64 {
        self.0.len() as u64
    }

    fn read_range(&self, offset: u64, len: usize) -> IoResult<Vec<u8>> {
        super::io::slice_range(self.0, "snapshot", offset, len)
    }
}

/// Eagerly decode a whole snapshot image from memory: every segment read,
/// CRC-checked, and materialized. Any corrupted byte fails the decode.
pub fn decode_eager(bytes: &[u8]) -> Result<(ProvGraph, u64), String> {
    let source = SliceSource(bytes);
    let dir = read_directory(&source)?;
    let (mut g, key_names, declared) = decode_structure(&source, &dir)?;
    // lint-ok(narrowing-cast): counts were encoded as u32.
    let (n, m, kc) = (g.vertex_count() as u32, g.edge_count() as u32, key_names.len() as u32);
    let vbytes = read_segment(&source, &dir, SEG_VPROPS)?;
    for (v, k, value) in decode_vprops(&vbytes, n, kc)? {
        g.set_vprop(v, &key_names[k.index()], value);
    }
    let ebytes = read_segment(&source, &dir, SEG_EPROPS)?;
    for (e, k, value) in decode_eprops(&ebytes, m, kc)? {
        g.set_eprop(e, &key_names[k.index()], value);
    }
    // Declaration backfills from the columns just loaded.
    for (kind, key) in &declared {
        g.create_vprop_index(*kind, key);
    }
    Ok((g, dir.seq))
}

/// The deferred property-column loader a lazily-decoded graph carries: on
/// first touch it range-reads the two property segments through the column
/// source, CRC-checks them, and decodes the triples.
#[derive(Debug)]
struct DeferredLoader {
    source: Arc<dyn ColumnSource>,
    dir: Directory,
    vertex_count: u32,
    edge_count: u32,
    key_count: u32,
    stats: Arc<LazyStats>,
}

impl PropLoader for DeferredLoader {
    fn load(&self) -> Result<LoadedColumns, String> {
        let vbytes = read_segment(self.source.as_ref(), &self.dir, SEG_VPROPS)?;
        let ebytes = read_segment(self.source.as_ref(), &self.dir, SEG_EPROPS)?;
        self.stats.segment_loads.fetch_add(2, Ordering::Relaxed);
        self.stats
            .bytes_loaded
            .fetch_add(vbytes.len() as u64 + ebytes.len() as u64, Ordering::Relaxed);
        Ok(LoadedColumns {
            vprops: decode_vprops(&vbytes, self.vertex_count, self.key_count)?,
            eprops: decode_eprops(&ebytes, self.edge_count, self.key_count)?,
        })
    }
}

/// Lazily open a snapshot: decode the structural segments now, defer the
/// property segments behind the column source until first touch.
fn open_lazy(
    source: Arc<dyn ColumnSource>,
    stats: Arc<LazyStats>,
) -> Result<(ProvGraph, u64), String> {
    let dir = read_directory(source.as_ref())?;
    let (mut g, key_names, declared) = decode_structure(source.as_ref(), &dir)?;
    let deferred = dir.segments[SEG_VPROPS].len as u64 + dir.segments[SEG_EPROPS].len as u64;
    stats.segments_deferred.fetch_add(2, Ordering::Relaxed);
    stats.deferred_bytes.fetch_add(deferred, Ordering::Relaxed);
    let loader = DeferredLoader {
        source,
        dir: dir.clone(),
        // lint-ok(narrowing-cast): counts were encoded as u32.
        vertex_count: g.vertex_count() as u32,
        // lint-ok(narrowing-cast): counts were encoded as u32.
        edge_count: g.edge_count() as u32,
        // lint-ok(narrowing-cast): key cardinality is far below u32::MAX.
        key_count: key_names.len() as u32,
        stats,
    };
    g.attach_lazy_props(Box::new(loader), declared);
    Ok((g, dir.seq))
}

/// Recover a snapshot image through `source` under the policy's decode mode.
pub fn recover_snapshot(
    source: Box<dyn ColumnSource>,
    mode: SnapshotDecode,
    stats: &Arc<LazyStats>,
) -> Result<(ProvGraph, u64), String> {
    match mode {
        SnapshotDecode::Eager => {
            let len = usize::try_from(source.len())
                .map_err(|_| "snapshot larger than the address space".to_string())?;
            let bytes = range(source.as_ref(), 0, len, "snapshot")?;
            decode_eager(&bytes)
        }
        SnapshotDecode::Lazy => open_lazy(Arc::from(source), Arc::clone(stats)),
    }
}

/// [`ColumnSource`] buffering a whole file read once through [`Io::read`] —
/// the fallback for backends without native range reads (notably the
/// fault-injection wrapper, whose corruption must keep flowing through its
/// `read` path). This is the only full-file snapshot read outside the
/// backends themselves.
#[derive(Debug)]
struct BufferedColumnSource {
    name: String,
    bytes: Vec<u8>,
}

impl ColumnSource for BufferedColumnSource {
    fn len(&self) -> u64 {
        self.bytes.len() as u64
    }

    fn read_range(&self, offset: u64, len: usize) -> IoResult<Vec<u8>> {
        super::io::slice_range(&self.bytes, &self.name, offset, len)
    }
}

/// A column source for `name` on `io`: the backend's native one when
/// available, otherwise a buffered whole-file fallback. `None` when the file
/// does not exist.
pub fn source_for(io: &dyn Io, name: &str) -> IoResult<Option<Box<dyn ColumnSource>>> {
    if let Some(source) = io.column_source(name)? {
        return Ok(Some(source));
    }
    match io.read(name)? {
        Some(bytes) => Ok(Some(Box::new(BufferedColumnSource { name: name.to_string(), bytes }))),
        None => Ok(None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::WalOp;

    fn rich_graph() -> ProvGraph {
        let mut g = ProvGraph::new();
        let data = g.add_entity("data-v1");
        let alice = g.add_agent("alice");
        let train = g.add_activity("train");
        let weights = g.add_vertex(VertexKind::Entity, None).unwrap();
        g.add_edge(EdgeKind::Used, train, data).unwrap();
        g.add_edge(EdgeKind::WasGeneratedBy, weights, train).unwrap();
        g.add_edge(EdgeKind::WasAssociatedWith, train, alice).unwrap();
        g.set_vprop(data, "filename", "data");
        g.set_vprop(data, "version", 1i64);
        g.set_vprop(weights, "acc", 0.75);
        g.set_eprop(EdgeId::new(0), "role", "input");
        g.create_vprop_index(VertexKind::Entity, "filename");
        g
    }

    fn lazy_open(bytes: &[u8]) -> (ProvGraph, u64, Arc<LazyStats>) {
        let stats = Arc::new(LazyStats::default());
        let source = Box::new(BufferedColumnSource { name: "snap".into(), bytes: bytes.to_vec() });
        let (g, seq) = recover_snapshot(source, SnapshotDecode::Lazy, &stats).unwrap();
        (g, seq, stats)
    }

    #[test]
    fn directory_describes_contiguous_crc_checked_segments() {
        let g = rich_graph();
        let bytes = encode(&g, 9);
        let dir = read_directory(&SliceSource(&bytes)).unwrap();
        assert_eq!(dir.seq, 9);
        let mut expect = (HEADER_BYTES + 12 + DIR_ENTRY_BYTES * SEG_COUNT) as u64;
        for seg in &dir.segments {
            assert_eq!(seg.offset, expect);
            expect += seg.len as u64;
        }
        assert_eq!(expect, bytes.len() as u64, "segments cover the file exactly");
    }

    #[test]
    fn lazy_equals_eager_and_defers_property_segments() {
        let g = rich_graph();
        let bytes = encode(&g, 5);
        let (eager, eseq) = decode_eager(&bytes).unwrap();
        let (lazy, lseq, stats) = lazy_open(&bytes);
        assert_eq!(eseq, 5);
        assert_eq!(lseq, 5);
        assert!(lazy.deferred_props_untouched());
        assert_eq!(stats.segments_deferred.load(Ordering::Relaxed), 2);
        assert_eq!(stats.segment_loads.load(Ordering::Relaxed), 0);
        // Structural queries do not materialize.
        assert_eq!(lazy.vertex_count(), eager.vertex_count());
        assert_eq!(lazy.vertex_by_name("alice"), eager.vertex_by_name("alice"));
        assert!(lazy.deferred_props_untouched());
        // Index declarations are visible without materializing.
        assert_eq!(lazy.declared_vprop_indexes(), eager.declared_vprop_indexes());
        assert!(lazy.has_vprop_index(VertexKind::Entity, "filename"));
        assert!(lazy.deferred_props_untouched());
        // First property touch loads the deferred segments; state matches.
        assert_eq!(lazy, eager);
        assert!(!lazy.deferred_props_untouched());
        assert_eq!(stats.segment_loads.load(Ordering::Relaxed), 2);
        assert_eq!(
            stats.bytes_loaded.load(Ordering::Relaxed),
            stats.deferred_bytes.load(Ordering::Relaxed)
        );
        lazy.validate().unwrap();
    }

    #[test]
    fn lazy_replays_wal_tail_prop_ops_at_materialization() {
        let g = rich_graph();
        let bytes = encode(&g, 5);
        // Twin A: lazy decode, then WAL-tail prop ops queued pre-touch.
        let (mut lazy, _, _) = lazy_open(&bytes);
        // Twin B: eager decode, same ops applied eagerly.
        let (mut eager, _) = decode_eager(&bytes).unwrap();
        let ops = [
            WalOp::AddVertex { kind: VertexKind::Entity, name: Some("late".into()) },
            WalOp::SetVProp { v: VertexId::new(4), key: "acc".into(), value: 0.9.into() },
            WalOp::SetVProp { v: VertexId::new(0), key: "fresh-key".into(), value: 1i64.into() },
            WalOp::UnsetVProp { v: VertexId::new(0), key: "version".into() },
            WalOp::SetEProp { e: EdgeId::new(1), key: "role".into(), value: "output".into() },
            WalOp::CreateVPropIndex { kind: VertexKind::Entity, key: "acc".into() },
        ];
        for op in &ops {
            lazy.apply_wal_op(op).unwrap();
            eager.apply_wal_op(op).unwrap();
        }
        assert!(lazy.deferred_props_untouched(), "prop replay queues, never touches");
        // Interner id assignment matched the eager twin even while queued.
        assert_eq!(lazy.key_id("fresh-key"), eager.key_id("fresh-key"));
        assert_eq!(lazy, eager);
        assert_eq!(
            lazy.find_by_prop(VertexKind::Entity, "acc", &PropValue::from(0.9)),
            eager.find_by_prop(VertexKind::Entity, "acc", &PropValue::from(0.9)),
        );
        // Replay of impossible ops is the same typed error as eager.
        let bad = WalOp::SetVProp { v: VertexId::new(99), key: "x".into(), value: 1i64.into() };
        let (mut lazy2, _, _) = lazy_open(&bytes);
        assert!(lazy2.apply_wal_op(&bad).is_err());
    }

    #[test]
    fn mutation_dissolves_the_overlay_into_the_records() {
        let g = rich_graph();
        let bytes = encode(&g, 5);
        let (mut lazy, _, _) = lazy_open(&bytes);
        lazy.set_vprop(VertexId::new(0), "filename", "data2");
        assert!(!lazy.has_deferred_props(), "first write dissolves the overlay");
        let (mut eager, _) = decode_eager(&bytes).unwrap();
        eager.set_vprop(VertexId::new(0), "filename", "data2");
        assert_eq!(lazy, eager);
        lazy.validate().unwrap();
        assert_eq!(
            lazy.find_by_prop(VertexKind::Entity, "filename", &PropValue::from("data2")),
            eager.find_by_prop(VertexKind::Entity, "filename", &PropValue::from("data2")),
        );
    }

    #[test]
    fn corrupt_deferred_segment_panics_at_first_touch_not_open() {
        let g = rich_graph();
        let mut bytes = encode(&g, 5);
        let dir = read_directory(&SliceSource(&bytes)).unwrap();
        let off = dir.segments[SEG_VPROPS].offset as usize + 4;
        bytes[off] ^= 0xff;
        // Eager: fails the open.
        assert!(decode_eager(&bytes).is_err());
        // Lazy: opens fine (structural segments are intact)…
        let (lazy, _, _) = lazy_open(&bytes);
        assert!(lazy.deferred_props_untouched());
        // …but the first touch detects the corruption loudly.
        let touch = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            lazy.vprop(VertexId::new(0), "filename").cloned()
        }));
        assert!(touch.is_err(), "corrupt deferred segment must not decode silently");
    }

    #[test]
    fn clones_share_one_materialization() {
        let g = rich_graph();
        let bytes = encode(&g, 5);
        let (lazy, _, stats) = lazy_open(&bytes);
        let clone = lazy.clone();
        assert_eq!(clone.vprop(VertexId::new(0), "filename"), Some(&PropValue::from("data")));
        assert_eq!(stats.segment_loads.load(Ordering::Relaxed), 2);
        // The original sees the clone's materialization — no second load.
        assert_eq!(lazy.vprop(VertexId::new(0), "filename"), Some(&PropValue::from("data")));
        assert_eq!(stats.segment_loads.load(Ordering::Relaxed), 2);
    }
}
