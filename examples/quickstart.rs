//! Quickstart: the paper's running example end to end.
//!
//! Builds the Fig. 2 lifecycle (Alice & Bob's classification project), runs
//! the two segmentation queries of Fig. 2(d) and the summarization query of
//! Fig. 2(e), and prints the results.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use prov_core::fig2;
use prov_model::EdgeKind;
use prov_segment::{Boundary, Categories, PgSegOptions, PgSegQuery, SegmentGraph};
use prov_store::{ProvGraph, ProvIndex};
use prov_summary::{PgSumQuery, SegmentRef};

fn print_segment(title: &str, graph: &ProvGraph, seg: &SegmentGraph) {
    println!("\n=== {title} ===");
    println!("vertices ({}):", seg.vertex_count());
    for (&v, cat) in seg.vertices.iter().zip(seg.categories.iter()) {
        println!("  {:<12} [{}]", graph.display_name(v), cat.tags());
    }
    println!("induced edges: {}", seg.edge_count());
}

fn main() {
    let ex = fig2::build();
    let graph = ex.graph.clone();
    let index = ProvIndex::build(&graph);

    // ------------------------------------------------------------------
    // Query 1 (Fig. 2(d)): how is Alice's weight-v2 connected to the
    // dataset? Bob does not know what Alice touched; he only names the two
    // entities, excludes attribution/derivation edges and extends two
    // activities away from the weights.
    // ------------------------------------------------------------------
    let q1 = PgSegQuery::between(vec![ex.v("dataset-v1")], vec![ex.v("weight-v2")]).with_boundary(
        Boundary::none()
            .without_edge_kinds(&[EdgeKind::WasAttributedTo, EdgeKind::WasDerivedFrom])
            .expand(vec![ex.v("weight-v2")], 2),
    );
    let seg1 = prov_segment::pgseg(&graph, &index, q1, &PgSegOptions::default()).unwrap();
    print_segment("Query 1: {dataset-v1} -> {weight-v2}", &graph, &seg1);
    println!(
        "-> Bob learns Alice updated the model: update-v2 in segment = {}",
        seg1.contains(ex.v("update-v2"))
    );

    // ------------------------------------------------------------------
    // Query 2 (Fig. 2(d)): how did Bob get accuracy 0.75? Alice queries from
    // the dataset to Bob's log-v3.
    // ------------------------------------------------------------------
    let q2 = PgSegQuery::between(vec![ex.v("dataset-v1")], vec![ex.v("log-v3")]).with_boundary(
        Boundary::none()
            .without_edge_kinds(&[EdgeKind::WasAttributedTo, EdgeKind::WasDerivedFrom])
            .expand(vec![ex.v("log-v3")], 2),
    );
    let seg2 = prov_segment::pgseg(&graph, &index, q2, &PgSegOptions::default()).unwrap();
    print_segment("Query 2: {dataset-v1} -> {log-v3}", &graph, &seg2);
    println!(
        "-> Bob only updated the solver (update-v3 in segment = {}), and did NOT \
         use Alice's model-v2 (in segment = {})",
        seg2.contains(ex.v("update-v3")),
        seg2.contains(ex.v("model-v2")),
    );

    // ------------------------------------------------------------------
    // Query 3 (Fig. 2(e)): an outsider summarizes both segments, aggregating
    // activities by command, entities by filename, agents anonymously, with
    // 1-hop provenance types.
    // ------------------------------------------------------------------
    let segments = vec![SegmentRef::from(&seg1), SegmentRef::from(&seg2)];
    let psg = prov_summary::pgsum(&graph, &segments, &PgSumQuery::fig2e());
    println!("\n=== Query 3: summarize Q1 + Q2 (K = filename/command, k = 1) ===");
    println!(
        "|input instances| = {}, |M| = {} (compaction ratio {:.2})",
        psg.input_vertex_count,
        psg.vertex_count(),
        psg.compaction_ratio()
    );
    for (i, v) in psg.vertices.iter().enumerate() {
        println!("  m{i}: {:<18} members={}", v.label, v.members.len());
    }
    println!("edges (with appearance frequency):");
    for e in &psg.edges {
        println!("  m{} -{}-> m{}   {:>3.0}%", e.src, e.kind.letter(), e.dst, e.frequency * 100.0);
    }
    println!("\nGraphviz DOT of the summary:\n{}", psg.to_dot());

    // Sanity: sources/destinations should be in their own segments.
    assert!(seg1.category(ex.v("dataset-v1")).unwrap().contains(Categories::SRC));
    assert!(seg2.category(ex.v("log-v3")).unwrap().contains(Categories::DST));
}
