//! `SimProvAlg`: worklist evaluation of the rewritten Fig. 4 grammar.
//!
//! Compared with running generic CflrB on the Fig. 6 normal form, SimProvAlg
//! exploits three properties (Sec. III-B):
//!
//! 1. **Combined rules** — `Aa → G⁻¹ Ee G` fuses the two normal-form rules
//!    `Lg → G⁻¹ Re` and `Rg → Lg G`, so no `Lg/Rg/...` intermediate facts ever
//!    enter the worklist: a popped `Ee(e1,e2)` directly produces activity
//!    pairs over the generator adjacency, and a popped `Aa(a1,a2)` directly
//!    produces entity pairs over the input adjacency.
//! 2. **Symmetry** — `Ee` and `Aa` are symmetric relations, so only canonical
//!    pairs (`rank(x) ≤ rank(y)`) are stored and processed (the paper's
//!    pruning strategy; toggleable for the Fig. 5(d)-style ablation).
//! 3. **Early stopping** — a pair whose endpoints are both older than every
//!    source entity can never extend to an accepting fact (expansion only
//!    moves further upstream, i.e. strictly older), so it is not expanded.
//!    PROV-specific: generic CFLR cannot use source information.
//!
//! Facts live in per-kind rank universes (dense entity/activity ids), so the
//! `FixedBitSet` tables take `O(|E|²/w + |A|²/w)` bits and the compressed
//! variant trades random-access speed for memory exactly as in the paper.

use crate::outcome::{EvalStats, SimilarOutcome};
use crate::view::MaskedGraph;
use prov_bitset::{CompressedBitmap, FastSet, FixedBitSet};
use prov_model::{VertexId, VertexKind};
use std::collections::VecDeque;
use std::time::Instant;

/// Configuration for [`similar_alg`].
#[derive(Debug, Clone, Default)]
pub struct AlgConfig {
    /// Store/process only canonical (ordered) pairs of the symmetric
    /// relations (`Default::default()` turns this on).
    pub symmetric_prune: bool,
    /// Apply the temporal early-stopping rule (on by default).
    pub early_stop: bool,
    /// Property-constrained similarity (Sec. III-A's generalization): the two
    /// matched path sides must also agree on these property values at every
    /// step. E.g. the "same command" table realizes the rewritten rule
    /// `Ee → U⁻¹ σ(ai, command) Aa σ(aj, command) U` — only activity pairs
    /// running the same command count as similar. `None` = plain SimProv.
    pub constraint: Option<ConstraintTable>,
}

impl AlgConfig {
    /// The paper's default configuration (both optimizations on, plain
    /// label-based SimProv). Same as `Default::default()`… except that the
    /// derived default would turn the optimizations *off*; use this.
    pub fn paper_default() -> Self {
        AlgConfig { symmetric_prune: true, early_stop: true, constraint: None }
    }
}

/// Per-vertex property fingerprints compiled from a [`SimilarConstraint`].
#[derive(Debug, Clone)]
pub struct ConstraintTable {
    /// Fingerprint per vertex (activities constrained by `activity_prop`,
    /// entities by `entity_prop`; unconstrained kinds and missing values get
    /// fixed sentinels so that "both missing" still matches).
    fp: Vec<u64>,
}

impl ConstraintTable {
    /// Fingerprint of a vertex.
    #[inline]
    pub fn fp(&self, v: VertexId) -> u64 {
        self.fp[v.index()]
    }
}

/// Fine-grained similarity constraints over property values (`σ`).
#[derive(Debug, Clone, Default)]
pub struct SimilarConstraint {
    /// Matched activities must share this property's value.
    pub activity_prop: Option<String>,
    /// Matched entities must share this property's value.
    pub entity_prop: Option<String>,
}

impl SimilarConstraint {
    /// No constraint (plain SimProv).
    pub fn none() -> Self {
        Self::default()
    }

    /// The paper's example: matched activities must run the same command.
    pub fn same_command() -> Self {
        SimilarConstraint { activity_prop: Some("command".into()), entity_prop: None }
    }

    /// True when no property constraint is active.
    pub fn is_empty(&self) -> bool {
        self.activity_prop.is_none() && self.entity_prop.is_none()
    }

    /// Compile against a graph into per-vertex fingerprints.
    pub fn compile(&self, graph: &prov_store::ProvGraph) -> ConstraintTable {
        use prov_store::hash::fx_hash64;
        let fp = graph
            .vertex_ids()
            .map(|v| {
                let key = match graph.vertex_kind(v) {
                    VertexKind::Activity => self.activity_prop.as_deref(),
                    VertexKind::Entity => self.entity_prop.as_deref(),
                    VertexKind::Agent => None,
                };
                match key {
                    None => 0u64, // unconstrained kind: always matches
                    Some(k) => match graph.vprop(v, k) {
                        Some(val) => fx_hash64(&(1u8, val)),
                        None => fx_hash64(&2u8), // "missing" matches "missing"
                    },
                }
            })
            .collect();
        ConstraintTable { fp }
    }
}

/// A pair relation over a dense rank universe, row- and column-indexed.
struct PairRel<S: FastSet> {
    rows: Vec<Option<S>>,
    cols: Vec<Option<S>>,
    universe: usize,
    len: usize,
}

impl<S: FastSet> PairRel<S> {
    fn new(universe: usize) -> Self {
        PairRel {
            rows: (0..universe).map(|_| None).collect(),
            cols: (0..universe).map(|_| None).collect(),
            universe,
            len: 0,
        }
    }

    fn insert(&mut self, i: u32, j: u32) -> bool {
        let u = self.universe;
        let row = self.rows[i as usize].get_or_insert_with(|| S::with_universe(u));
        if !row.insert(j) {
            return false;
        }
        self.cols[j as usize].get_or_insert_with(|| S::with_universe(u)).insert(i);
        self.len += 1;
        true
    }

    fn partners(&self, r: u32, out: &mut Vec<u32>) {
        if let Some(row) = &self.rows[r as usize] {
            out.extend(row.iter_elems());
        }
        if let Some(col) = &self.cols[r as usize] {
            out.extend(col.iter_elems());
        }
        out.sort_unstable();
        out.dedup();
    }

    fn heap_bytes(&self) -> usize {
        self.rows
            .iter()
            .chain(self.cols.iter())
            .filter_map(|s| s.as_ref().map(|s| s.heap_bytes()))
            .sum()
    }
}

/// Evaluate `L(SimProv)`-reachability with SimProvAlg over fact tables `S`.
pub fn similar_alg<S: FastSet>(
    view: &MaskedGraph<'_>,
    vsrc: &[VertexId],
    vdst: &[VertexId],
    cfg: &AlgConfig,
) -> SimilarOutcome {
    let t0 = Instant::now();
    let idx = view.index();
    let entities = idx.kind_members(VertexKind::Entity);
    let activities = idx.kind_members(VertexKind::Activity);
    let (ne, na) = (entities.len(), activities.len());

    let mut ee: PairRel<S> = PairRel::new(ne);
    let mut aa: PairRel<S> = PairRel::new(na);
    // Worklist entries: (is_ee, lo_rank, hi_rank).
    let mut worklist: VecDeque<(bool, u32, u32)> = VecDeque::new();
    let mut pops: u64 = 0;

    let min_src_birth: Option<u64> = vsrc
        .iter()
        .filter(|&&s| s.index() < idx.vertex_count() && view.vertex_ok(s))
        .map(|&s| idx.birth(s))
        .min()
        .filter(|_| cfg.early_stop);

    let canon = |i: u32, j: u32| if i <= j { (i, j) } else { (j, i) };

    // Init: Ee(vj, vj) anchors.
    for &vj in vdst {
        if vj.index() < idx.vertex_count()
            && view.vertex_ok(vj)
            && idx.kind(vj) == VertexKind::Entity
        {
            let r = idx.kind_rank(vj);
            if ee.insert(r, r) {
                worklist.push_back((true, r, r));
            }
        }
    }

    let mut scratch: Vec<(u32, u32)> = Vec::new();
    while let Some((is_ee, lo, hi)) = worklist.pop_front() {
        pops += 1;
        if is_ee {
            let (e1, e2) = (entities[lo as usize], entities[hi as usize]);
            if let Some(minb) = min_src_birth {
                if idx.birth(e1) < minb && idx.birth(e2) < minb {
                    continue; // early stop: both older than every source
                }
            }
            scratch.clear();
            for a1 in view.generators_of(e1) {
                for a2 in view.generators_of(e2) {
                    if let Some(table) = &cfg.constraint {
                        if table.fp(a1) != table.fp(a2) {
                            continue; // σ(a1, p0) ≠ σ(a2, p0)
                        }
                    }
                    let (r1, r2) = (idx.kind_rank(a1), idx.kind_rank(a2));
                    let pair = if cfg.symmetric_prune { canon(r1, r2) } else { (r1, r2) };
                    scratch.push(pair);
                    if !cfg.symmetric_prune && r1 != r2 {
                        scratch.push((r2, r1));
                    }
                }
            }
            for &(i, j) in &scratch {
                if aa.insert(i, j) {
                    worklist.push_back((false, i, j));
                }
            }
        } else {
            let (a1, a2) = (activities[lo as usize], activities[hi as usize]);
            if let Some(minb) = min_src_birth {
                if idx.birth(a1) < minb && idx.birth(a2) < minb {
                    continue;
                }
            }
            scratch.clear();
            for e1 in view.inputs_of(a1) {
                for e2 in view.inputs_of(a2) {
                    if let Some(table) = &cfg.constraint {
                        if table.fp(e1) != table.fp(e2) {
                            continue;
                        }
                    }
                    let (r1, r2) = (idx.kind_rank(e1), idx.kind_rank(e2));
                    let pair = if cfg.symmetric_prune { canon(r1, r2) } else { (r1, r2) };
                    scratch.push(pair);
                    if !cfg.symmetric_prune && r1 != r2 {
                        scratch.push((r2, r1));
                    }
                }
            }
            for &(i, j) in &scratch {
                if ee.insert(i, j) {
                    worklist.push_back((true, i, j));
                }
            }
        }
    }

    // Answer: partners of each source in the Ee relation.
    let mut marks = vec![false; idx.vertex_count()];
    let mut buf: Vec<u32> = Vec::new();
    for &src in vsrc {
        if src.index() >= idx.vertex_count()
            || !view.vertex_ok(src)
            || idx.kind(src) != VertexKind::Entity
        {
            continue;
        }
        buf.clear();
        ee.partners(idx.kind_rank(src), &mut buf);
        for &r in &buf {
            marks[entities[r as usize].index()] = true;
        }
    }
    let answer = crate::outcome::marks_to_vec(&marks);
    let mem = ee.heap_bytes() + aa.heap_bytes();
    SimilarOutcome {
        answer,
        vc2: None,
        stats: EvalStats {
            elapsed: t0.elapsed(),
            work: pops + (ee.len + aa.len) as u64,
            memory_bytes: mem,
            dnf: false,
        },
    }
}

/// SimProvAlg with `FixedBitSet` fact tables (the paper's default).
pub fn similar_alg_bitset(
    view: &MaskedGraph<'_>,
    vsrc: &[VertexId],
    vdst: &[VertexId],
    cfg: &AlgConfig,
) -> SimilarOutcome {
    similar_alg::<FixedBitSet>(view, vsrc, vdst, cfg)
}

/// SimProvAlg with compressed-bitmap fact tables (`w CBM`).
pub fn similar_alg_cbm(
    view: &MaskedGraph<'_>,
    vsrc: &[VertexId],
    vdst: &[VertexId],
    cfg: &AlgConfig,
) -> SimilarOutcome {
    similar_alg::<CompressedBitmap>(view, vsrc, vdst, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tst::{similar_tst, TstConfig};
    use prov_model::EdgeKind;
    use prov_store::{ProvGraph, ProvIndex};

    fn shared_dst() -> (ProvGraph, ProvIndex, Vec<VertexId>) {
        // d <-U- t1 <-G- m1 ; d <-U- t2 <-G- m2 ; {m1,m2} <-U- t3 <-G- w
        let mut g = ProvGraph::new();
        let d = g.add_entity("d");
        let t1 = g.add_activity("t1");
        let m1 = g.add_entity("m1");
        let t2 = g.add_activity("t2");
        let m2 = g.add_entity("m2");
        let t3 = g.add_activity("t3");
        let w = g.add_entity("w");
        g.add_edge(EdgeKind::Used, t1, d).unwrap();
        g.add_edge(EdgeKind::WasGeneratedBy, m1, t1).unwrap();
        g.add_edge(EdgeKind::Used, t2, d).unwrap();
        g.add_edge(EdgeKind::WasGeneratedBy, m2, t2).unwrap();
        g.add_edge(EdgeKind::Used, t3, m1).unwrap();
        g.add_edge(EdgeKind::Used, t3, m2).unwrap();
        g.add_edge(EdgeKind::WasGeneratedBy, w, t3).unwrap();
        let idx = ProvIndex::build(&g);
        let ids = vec![d, t1, m1, t2, m2, t3, w];
        (g, idx, ids)
    }

    #[test]
    fn alg_finds_similar_siblings() {
        let (_, idx, ids) = shared_dst();
        let view = MaskedGraph::unmasked(&idx);
        let (m1, m2, w) = (ids[2], ids[4], ids[6]);
        let out = similar_alg_bitset(&view, &[m1], &[w], &AlgConfig::paper_default());
        assert_eq!(out.answer, vec![m1, m2]);
        assert!(out.vc2.is_none());
        assert!(out.stats.work > 0);
    }

    #[test]
    fn alg_agrees_with_tst_on_all_query_shapes() {
        let (_, idx, ids) = shared_dst();
        let view = MaskedGraph::unmasked(&idx);
        let entity_ids: Vec<_> =
            ids.iter().copied().filter(|&v| idx.kind(v) == VertexKind::Entity).collect();
        for &src in &entity_ids {
            for &dst in &entity_ids {
                let a = similar_alg_bitset(&view, &[src], &[dst], &AlgConfig::paper_default());
                let t = similar_tst(&view, &[src], &[dst], &TstConfig::default());
                assert_eq!(a.answer, t.answer, "src={src} dst={dst}");
            }
        }
        // Multi-source multi-destination.
        let a = similar_alg_bitset(
            &view,
            &[entity_ids[0], entity_ids[1]],
            &[entity_ids[3], entity_ids[2]],
            &AlgConfig::paper_default(),
        );
        let t = similar_tst(
            &view,
            &[entity_ids[0], entity_ids[1]],
            &[entity_ids[3], entity_ids[2]],
            &TstConfig::default(),
        );
        assert_eq!(a.answer, t.answer);
    }

    #[test]
    fn pruning_variants_agree() {
        let (_, idx, ids) = shared_dst();
        let view = MaskedGraph::unmasked(&idx);
        let (d, w) = (ids[0], ids[6]);
        let configs = [
            AlgConfig { symmetric_prune: true, early_stop: true, constraint: None },
            AlgConfig { symmetric_prune: true, early_stop: false, constraint: None },
            AlgConfig { symmetric_prune: false, early_stop: true, constraint: None },
            AlgConfig { symmetric_prune: false, early_stop: false, constraint: None },
        ];
        let expect = similar_alg_bitset(&view, &[d], &[w], &configs[0]).answer;
        for cfg in &configs[1..] {
            assert_eq!(similar_alg_bitset(&view, &[d], &[w], cfg).answer, expect, "{cfg:?}");
        }
        // Pruned run does less or equal work than unpruned.
        let pruned = similar_alg_bitset(&view, &[d], &[w], &configs[0]);
        let unpruned = similar_alg_bitset(&view, &[d], &[w], &configs[3]);
        assert!(pruned.stats.work <= unpruned.stats.work);
    }

    #[test]
    fn cbm_backend_agrees_with_bitset() {
        let (_, idx, ids) = shared_dst();
        let view = MaskedGraph::unmasked(&idx);
        let (d, w) = (ids[0], ids[6]);
        let b = similar_alg_bitset(&view, &[d], &[w], &AlgConfig::paper_default());
        let c = similar_alg_cbm(&view, &[d], &[w], &AlgConfig::paper_default());
        assert_eq!(b.answer, c.answer);
    }

    #[test]
    fn non_entity_and_out_of_range_inputs_are_ignored() {
        let (_, idx, ids) = shared_dst();
        let view = MaskedGraph::unmasked(&idx);
        let t1 = ids[1]; // activity: invalid as src/dst
        let out = similar_alg_bitset(&view, &[t1], &[ids[6]], &AlgConfig::paper_default());
        assert!(out.answer.is_empty());
        let out = similar_alg_bitset(
            &view,
            &[VertexId::new(999)],
            &[ids[6]],
            &AlgConfig::paper_default(),
        );
        assert!(out.answer.is_empty());
    }
}
