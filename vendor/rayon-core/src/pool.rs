//! Fixed-size worker pool with per-worker work-stealing deques.
//!
//! Layout mirrors rayon-core's registry at a much smaller scale: one global
//! injector deque for jobs pushed from outside the pool, one `StealDeque`
//! per worker for jobs pushed from inside a worker (owner pops LIFO, other
//! workers steal FIFO), and a generation-counted condvar for parking idle
//! workers without lost wakeups. There is no registry access and no dynamic
//! resizing: the pool is sized once, at construction, from `PROV_THREADS`
//! (or `available_parallelism` when unset) for the global pool.

use std::cell::Cell;
use std::sync::OnceLock;

use crate::deque::StealDeque;
use crate::sync::atomic::{AtomicBool, Ordering};
use crate::sync::{spawn_named, Arc, Condvar, Mutex};

pub(crate) type Job = Box<dyn FnOnce() + Send + 'static>;

pub(crate) struct Inner {
    /// Jobs pushed from threads outside the pool.
    injector: StealDeque<Job>,
    /// One deque per worker; worker `i` owns `deques[i]`.
    deques: Vec<StealDeque<Job>>,
    /// Generation counter bumped on every push; workers park against it so a
    /// push between "scan found nothing" and "wait" is never lost.
    generation: Mutex<u64>,
    wake: Condvar,
    stop: AtomicBool,
}

thread_local! {
    /// `(pool identity, worker index)` for pool worker threads; `None` on
    /// external threads. Identity is the `Arc<Inner>` pointer so a thread
    /// belonging to one pool does not push into another pool's deques.
    static WORKER: Cell<Option<(usize, usize)>> = const { Cell::new(None) };
}

impl Inner {
    fn key(self: &Arc<Self>) -> usize {
        Arc::as_ptr(self) as usize
    }

    pub(crate) fn notify(&self) {
        let mut generation = self.generation.lock().unwrap();
        *generation = generation.wrapping_add(1);
        drop(generation);
        self.wake.notify_all();
    }

    /// Push a job: onto the current worker's own deque when called from
    /// inside this pool, onto the injector otherwise.
    pub(crate) fn push(self: &Arc<Self>, job: Job) {
        match WORKER.with(|w| w.get()) {
            Some((key, idx)) if key == self.key() => self.deques[idx].push(job),
            _ => self.injector.push(job),
        }
        self.notify();
    }

    /// Locate a runnable job: own deque (LIFO) first, then the injector,
    /// then steal from the other workers (FIFO).
    pub(crate) fn find_job(&self, me: Option<usize>) -> Option<Job> {
        if let Some(idx) = me {
            if let Some(job) = self.deques[idx].pop() {
                return Some(job);
            }
        }
        if let Some(job) = self.injector.steal() {
            return Some(job);
        }
        let n = self.deques.len();
        let start = me.map_or(0, |idx| idx + 1);
        for offset in 0..n {
            let victim = (start + offset) % n;
            if Some(victim) == me {
                continue;
            }
            if let Some(job) = self.deques[victim].steal() {
                return Some(job);
            }
        }
        None
    }

    /// The current thread's worker index, if it is a worker of this pool.
    pub(crate) fn current_worker(self: &Arc<Self>) -> Option<usize> {
        match WORKER.with(|w| w.get()) {
            Some((key, idx)) if key == self.key() => Some(idx),
            _ => None,
        }
    }
}

fn worker_loop(inner: Arc<Inner>, idx: usize) {
    WORKER.with(|w| w.set(Some((inner.key(), idx))));
    loop {
        if inner.stop.load(Ordering::Acquire) {
            return;
        }
        if let Some(job) = inner.find_job(Some(idx)) {
            job();
            continue;
        }
        // Park: re-scan with the generation lock held, so any push (which
        // bumps the generation under the same lock) either lands before the
        // scan or wakes us after we wait.
        let mut generation = inner.generation.lock().unwrap();
        loop {
            if inner.stop.load(Ordering::Acquire) {
                return;
            }
            if let Some(job) = inner.find_job(Some(idx)) {
                drop(generation);
                job();
                break;
            }
            generation = inner.wake.wait(generation).unwrap();
        }
    }
}

/// A fixed pool of worker threads. See [`crate::scope`] for the task API.
pub struct ThreadPool {
    pub(crate) inner: Arc<Inner>,
    threads: usize,
}

impl ThreadPool {
    /// Spawn a pool with `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let inner = Arc::new(Inner {
            injector: StealDeque::new(),
            deques: (0..threads).map(|_| StealDeque::new()).collect(),
            generation: Mutex::new(0),
            wake: Condvar::new(),
            stop: AtomicBool::new(false),
        });
        for idx in 0..threads {
            let inner = Arc::clone(&inner);
            spawn_named(format!("prov-worker-{idx}"), move || worker_loop(inner, idx));
        }
        ThreadPool { inner, threads }
    }

    pub fn num_threads(&self) -> usize {
        self.threads
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.inner.stop.store(true, Ordering::Release);
        self.inner.notify();
    }
}

static GLOBAL: OnceLock<ThreadPool> = OnceLock::new();

/// Number of workers the global pool uses: `PROV_THREADS` when set to a
/// positive integer, the machine's available parallelism otherwise.
fn threads_from_env() -> usize {
    std::env::var("PROV_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
}

/// The process-wide pool, created on first use and never torn down.
pub fn global_pool() -> &'static ThreadPool {
    GLOBAL.get_or_init(|| ThreadPool::new(threads_from_env()))
}

/// Worker count of the global pool.
pub fn current_num_threads() -> usize {
    global_pool().num_threads()
}

/// The width the global pool has — or *would* have — without instantiating
/// it. Lets callers size chunk counts (and decide whether parallelism is
/// worth anything at all) before a single worker thread is spawned.
pub fn configured_num_threads() -> usize {
    match GLOBAL.get() {
        Some(pool) => pool.num_threads(),
        None => threads_from_env(),
    }
}
