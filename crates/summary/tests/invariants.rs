//! PgSum invariants on randomly generated segment sets:
//!
//! * the summary preserves bounded path-label words exactly;
//! * `cr(PgSum) ≤ cr(pSum) ≤ 1`;
//! * merging is idempotent (summarizing a summary changes nothing);
//! * the fast simulation equals the naive fixpoint.

use proptest::prelude::*;
use prov_model::{EdgeKind, VertexId};
use prov_store::ProvGraph;
use prov_summary::paths::check_invariant;
use prov_summary::simulation::{simulation, simulation_naive, SimDirection};
use prov_summary::{
    build_g0, merge, pgsum_with_internals, psum, PgSumQuery, PropertyAggregation, SegmentRef,
};

/// Plan for one segment: a chain/DAG of `steps` activities over `k` activity
/// type labels, each consuming 1–2 previous entities and producing 1–2.
#[derive(Debug, Clone)]
struct SegmentPlan {
    steps: Vec<(u8, Vec<prop::sample::Index>, usize)>, // (type, inputs, outputs)
}

fn segment_plan(max_types: u8) -> impl Strategy<Value = SegmentPlan> {
    proptest::collection::vec(
        (0..max_types, proptest::collection::vec(any::<prop::sample::Index>(), 1..3), 1..3usize),
        1..6,
    )
    .prop_map(|steps| SegmentPlan { steps })
}

/// Materialize segments into one backing graph.
fn build(plans: &[SegmentPlan]) -> (ProvGraph, Vec<SegmentRef>) {
    let mut g = ProvGraph::new();
    let mut segs = Vec::new();
    for plan in plans {
        let mut vertices: Vec<VertexId> = Vec::new();
        let mut edges = Vec::new();
        let seed = g.add_entity("seed");
        g.set_vprop(seed, "filename", "seed");
        let mut entities = vec![seed];
        vertices.push(seed);
        for (ty, inputs, outputs) in &plan.steps {
            let a = g.add_activity(&format!("op{ty}"));
            g.set_vprop(a, "command", format!("op{ty}"));
            vertices.push(a);
            let mut used = std::collections::BTreeSet::new();
            for idx in inputs {
                used.insert(*idx.get(&entities));
            }
            for e in used {
                edges.push(g.add_edge(EdgeKind::Used, a, e).unwrap());
            }
            for oi in 0..*outputs {
                let e = g.add_entity(&format!("f{oi}"));
                g.set_vprop(e, "filename", format!("f{oi}"));
                edges.push(g.add_edge(EdgeKind::WasGeneratedBy, e, a).unwrap());
                entities.push(e);
                vertices.push(e);
            }
        }
        segs.push(SegmentRef::new(vertices, edges));
    }
    (g, segs)
}

fn queries() -> Vec<PgSumQuery> {
    vec![
        PgSumQuery::new(PropertyAggregation::ignore_all(), 0),
        PgSumQuery::new(PropertyAggregation::ignore_all(), 1),
        PgSumQuery::fig2e(),
        PgSumQuery::new(PropertyAggregation::fig2e().aggregation_clone(), 2),
    ]
}

/// Helper because PropertyAggregation lacks Clone in public builder position.
trait AggClone {
    fn aggregation_clone(&self) -> PropertyAggregation;
}

impl AggClone for PropertyAggregation {
    fn aggregation_clone(&self) -> PropertyAggregation {
        self.clone()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn summary_preserves_bounded_path_words(
        plans in proptest::collection::vec(segment_plan(3), 1..5),
    ) {
        let (g, segs) = build(&plans);
        for q in queries() {
            let (_, g0, quotiented) = pgsum_with_internals(&g, &segs, &q);
            if let Err(e) = check_invariant(&g0, &quotiented, 5) {
                prop_assert!(false, "k={} violates invariant: {e}", q.k);
            }
        }
    }

    #[test]
    fn pgsum_never_worse_than_psum_and_bounded(
        plans in proptest::collection::vec(segment_plan(3), 1..5),
    ) {
        let (g, segs) = build(&plans);
        for q in queries() {
            let (psg, g0, _) = pgsum_with_internals(&g, &segs, &q);
            let ps = psum(&g0);
            prop_assert!(psg.compaction_ratio() <= ps.compaction_ratio + 1e-12);
            prop_assert!(ps.compaction_ratio <= 1.0 + 1e-12);
            prop_assert!(psg.compaction_ratio() > 0.0);
            prop_assert_eq!(psg.input_vertex_count, g0.len());
        }
    }

    #[test]
    fn merging_is_idempotent(
        plans in proptest::collection::vec(segment_plan(2), 1..4),
    ) {
        let (g, segs) = build(&plans);
        let q = PgSumQuery::new(PropertyAggregation::ignore_all(), 1);
        let (_, g0, quotiented) = pgsum_with_internals(&g, &segs, &q);
        // Re-merging the quotient must be a no-op.
        let again = merge(&quotiented);
        prop_assert_eq!(again.members.len(), quotiented.len());
        let _ = g0;
    }

    #[test]
    fn fast_simulation_matches_naive(
        plans in proptest::collection::vec(segment_plan(2), 1..3),
    ) {
        let (g, segs) = build(&plans);
        let g0 = build_g0(&g, &segs, &PropertyAggregation::ignore_all(), 0);
        for dir in [SimDirection::Out, SimDirection::In] {
            let fast = simulation(&g0, dir);
            let slow = simulation_naive(&g0, dir);
            for v in 0..g0.len() as u32 {
                for u in 0..g0.len() as u32 {
                    prop_assert_eq!(fast.le(v, u), slow[v as usize][u as usize]);
                }
            }
        }
    }

    #[test]
    fn summary_edges_have_valid_frequencies(
        plans in proptest::collection::vec(segment_plan(3), 1..5),
    ) {
        let (g, segs) = build(&plans);
        let (psg, _, quotiented) = pgsum_with_internals(&g, &segs, &PgSumQuery::fig2e());
        let nseg = segs.len() as f64;
        for e in &psg.edges {
            prop_assert!(e.frequency > 0.0 && e.frequency <= 1.0);
            let scaled = e.frequency * nseg;
            prop_assert!((scaled - scaled.round()).abs() < 1e-9);
            prop_assert!(e.src != e.dst, "Lemma-5 merging cannot create self-loops");
        }
        // Psg vertex count matches quotient node count.
        prop_assert_eq!(psg.vertex_count(), quotiented.len());
    }
}
