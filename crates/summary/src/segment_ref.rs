//! Lightweight segment references — the input unit of PgSum.
//!
//! A [`SegmentRef`] names a subgraph of a backing [`ProvGraph`] by vertex and
//! edge ids. PgSeg results convert losslessly; workload generators build them
//! directly.

use prov_model::{EdgeId, VertexId};
use prov_segment::SegmentGraph;
use prov_store::ProvGraph;

/// One segment: a subgraph of the backing provenance graph.
#[derive(Debug, Clone, Default)]
pub struct SegmentRef {
    /// Vertices of the segment (sorted, deduplicated).
    pub vertices: Vec<VertexId>,
    /// Edges of the segment (each edge's endpoints must be in `vertices`).
    pub edges: Vec<EdgeId>,
}

impl SegmentRef {
    /// Build from explicit vertex/edge lists (sorts and dedups).
    pub fn new(mut vertices: Vec<VertexId>, mut edges: Vec<EdgeId>) -> Self {
        vertices.sort_unstable();
        vertices.dedup();
        edges.sort_unstable();
        edges.dedup();
        SegmentRef { vertices, edges }
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.vertices.len()
    }

    /// Validate that every edge endpoint is a segment vertex.
    pub fn validate(&self, graph: &ProvGraph) -> Result<(), String> {
        for &e in &self.edges {
            let rec = graph.try_edge(e).map_err(|err| err.to_string())?;
            if self.vertices.binary_search(&rec.src).is_err()
                || self.vertices.binary_search(&rec.dst).is_err()
            {
                return Err(format!("edge {e} endpoint outside the segment"));
            }
        }
        Ok(())
    }
}

impl From<&SegmentGraph> for SegmentRef {
    fn from(seg: &SegmentGraph) -> Self {
        SegmentRef::new(seg.vertices.clone(), seg.edges.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prov_model::EdgeKind;

    #[test]
    fn new_sorts_and_dedups() {
        let s = SegmentRef::new(
            vec![VertexId::new(3), VertexId::new(1), VertexId::new(3)],
            vec![EdgeId::new(2), EdgeId::new(2)],
        );
        assert_eq!(s.vertices, vec![VertexId::new(1), VertexId::new(3)]);
        assert_eq!(s.edges, vec![EdgeId::new(2)]);
        assert_eq!(s.vertex_count(), 2);
    }

    #[test]
    fn validate_checks_endpoints() {
        let mut g = ProvGraph::new();
        let d = g.add_entity("d");
        let t = g.add_activity("t");
        let e = g.add_edge(EdgeKind::Used, t, d).unwrap();
        let ok = SegmentRef::new(vec![d, t], vec![e]);
        assert!(ok.validate(&g).is_ok());
        let bad = SegmentRef::new(vec![t], vec![e]);
        assert!(bad.validate(&g).is_err());
    }

    #[test]
    fn from_segment_graph() {
        let mut g = ProvGraph::new();
        let d = g.add_entity("d");
        let t = g.add_activity("t");
        g.add_edge(EdgeKind::Used, t, d).unwrap();
        let idx = prov_store::ProvIndex::build(&g);
        let seg = prov_segment::pgseg(
            &g,
            &idx,
            prov_segment::PgSegQuery::between(vec![d], vec![d]),
            &prov_segment::PgSegOptions::default(),
        )
        .unwrap();
        let sref: SegmentRef = (&seg).into();
        assert!(sref.vertex_count() >= 1);
        assert!(sref.validate(&g).is_ok());
    }
}
