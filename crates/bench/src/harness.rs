//! Experiment harness reproducing every subplot of Fig. 5.
//!
//! Each `fig5x` function regenerates one subplot as a [`FigureResult`]: the
//! same x-axis sweep, the same competing methods, the same y quantity
//! (runtime for (a)–(d), compaction ratio for (e)–(h)). Absolute numbers
//! differ from the paper's 2018 testbed; the reproduction target is the
//! *shape* — method ordering, growth trends, DNF points (see
//! `EXPERIMENTS.md`).
//!
//! Methods that the paper reports as failing (Cypher beyond ~10² vertices,
//! CflrB out-of-memory at `Pd50k`, SimProvAlg's plain-bitset tables at
//! `Pd100k`) are capped per series; points beyond the cap are emitted as
//! `DNF`, mirroring the paper's missing data points.

use prov_bitset::SetBackend;
use prov_model::{VertexId, VertexKind};
use prov_segment::{
    evaluate_similarity, similar_tst, MaskedGraph, NaiveBudget, PgSegOptions, SimilarEvaluator,
    TstConfig,
};
use prov_store::{ProvGraph, ProvIndex};
use prov_summary::{PgSumQuery, PropertyAggregation, SegmentRef};
use prov_workload::{
    generate_pd, generate_sd, sources_at_percentile, standard_query, PdParams, SdParams,
};
use std::time::Instant;

/// Experiment scale: `Quick` for smoke runs and `cargo bench` sanity,
/// `Full` for regenerating the figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Small sizes, single repetition (seconds).
    Quick,
    /// Paper-like sizes (minutes).
    Full,
}

/// One plotted series.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend name (matches the paper's).
    pub name: String,
    /// `(x, y)` points; `None` = DNF (time/memory budget exceeded).
    pub points: Vec<(f64, Option<f64>)>,
}

/// One reproduced subplot.
#[derive(Debug, Clone)]
pub struct FigureResult {
    /// Figure id, e.g. `5a`.
    pub id: &'static str,
    /// Title (the paper's caption).
    pub title: String,
    /// x-axis label.
    pub x_label: String,
    /// y-axis label.
    pub y_label: String,
    /// All series.
    pub series: Vec<Series>,
}

impl FigureResult {
    /// Render the figure as an aligned text table (one row per x value).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("Fig. {} — {}\n", self.id, self.title));
        out.push_str(&format!("{:<14}", self.x_label));
        for s in &self.series {
            out.push_str(&format!("{:>18}", s.name));
        }
        out.push('\n');
        let xs: Vec<f64> = self.series[0].points.iter().map(|p| p.0).collect();
        for (i, x) in xs.iter().enumerate() {
            out.push_str(&format!("{:<14}", trim_float(*x)));
            for s in &self.series {
                match s.points.get(i).and_then(|p| p.1) {
                    Some(y) => out.push_str(&format!("{:>18}", format_y(&self.y_label, y))),
                    None => out.push_str(&format!("{:>18}", "DNF")),
                }
            }
            out.push('\n');
        }
        out
    }
}

fn trim_float(x: f64) -> String {
    if x.fract() == 0.0 && x.abs() < 1e9 {
        format!("{}", x as i64)
    } else {
        format!("{x}")
    }
}

fn format_y(label: &str, y: f64) -> String {
    if label.contains("ratio") {
        format!("{y:.3}")
    } else if y < 0.001 {
        format!("{:.1}us", y * 1e6)
    } else if y < 1.0 {
        format!("{:.2}ms", y * 1e3)
    } else {
        format!("{y:.2}s")
    }
}

/// Time one similarity evaluation; returns seconds (None on naive DNF).
fn time_eval(
    view: &MaskedGraph<'_>,
    vsrc: &[VertexId],
    vdst: &[VertexId],
    evaluator: SimilarEvaluator,
) -> Option<f64> {
    let opts = PgSegOptions {
        evaluator,
        naive_budget: NaiveBudget { max_paths: 400_000, max_expansions: 4_000_000 },
        ..PgSegOptions::default()
    };
    let t0 = Instant::now();
    let out = evaluate_similarity(view, vsrc, vdst, &opts);
    let secs = t0.elapsed().as_secs_f64();
    if out.stats.dnf {
        None
    } else {
        Some(secs)
    }
}

struct PdInstance {
    graph: ProvGraph,
    index: ProvIndex,
    vsrc: Vec<VertexId>,
    vdst: Vec<VertexId>,
}

fn pd_instance(params: &PdParams) -> PdInstance {
    let graph = generate_pd(params);
    let index = ProvIndex::build(&graph);
    let (vsrc, vdst) = standard_query(&graph, 2);
    PdInstance { graph, index, vsrc, vdst }
}

/// Fig. 5(a): runtime vs graph size `N`, all methods.
pub fn fig5a(scale: Scale) -> FigureResult {
    let sizes: &[usize] = match scale {
        Scale::Quick => &[50, 100, 1_000, 5_000],
        Scale::Full => &[50, 100, 1_000, 10_000, 50_000, 100_000],
    };
    // Caps reproducing the paper's DNF entries.
    let naive_cap = 200;
    let cflr_cap = match scale {
        Scale::Quick => 1_000,
        Scale::Full => 10_000,
    };
    let alg_bit_cap = 50_000; // paper: OOM at Pd100k with 32-bit BitSet tables

    let methods: Vec<(String, SimilarEvaluator, usize)> = vec![
        ("Cypher".into(), SimilarEvaluator::Naive, naive_cap),
        ("CflrB".into(), SimilarEvaluator::CflrB(SetBackend::Bit), cflr_cap),
        ("CflrB wCBM".into(), SimilarEvaluator::CflrB(SetBackend::Compressed), cflr_cap),
        ("SimProvAlg".into(), SimilarEvaluator::SimProvAlg(SetBackend::Bit), alg_bit_cap),
        ("Alg wCBM".into(), SimilarEvaluator::SimProvAlg(SetBackend::Compressed), usize::MAX),
        ("SimProvTst".into(), SimilarEvaluator::SimProvTst, usize::MAX),
    ];

    let mut series: Vec<Series> =
        methods.iter().map(|(n, ..)| Series { name: n.clone(), points: Vec::new() }).collect();
    let mut tst_cbm = Series { name: "Tst wCBM".into(), points: Vec::new() };

    for &n in sizes {
        let inst = pd_instance(&PdParams::with_size(n));
        let view = MaskedGraph::unmasked(&inst.index);
        for ((name, evaluator, cap), serie) in methods.iter().zip(series.iter_mut()) {
            let y =
                if n <= *cap { time_eval(&view, &inst.vsrc, &inst.vdst, *evaluator) } else { None };
            let _ = name;
            serie.points.push((n as f64, y));
        }
        // SimProvTst with compressed level sets.
        let t0 = Instant::now();
        let _ = similar_tst(
            &view,
            &inst.vsrc,
            &inst.vdst,
            &TstConfig { compressed_sets: true, ..TstConfig::default() },
        );
        tst_cbm.points.push((n as f64, Some(t0.elapsed().as_secs_f64())));
        drop(inst);
    }
    series.push(tst_cbm);

    FigureResult {
        id: "5a",
        title: "Varying graph size N (Pd graphs, standard first/last-entity query)".into(),
        x_label: "N".into(),
        y_label: "runtime (s)".into(),
        series,
    }
}

fn sweep_pd<F: Fn(f64) -> PdParams>(
    xs: &[f64],
    make_params: F,
    methods: &[(&str, SimilarEvaluator)],
) -> Vec<Series> {
    let mut series: Vec<Series> =
        methods.iter().map(|(n, _)| Series { name: n.to_string(), points: Vec::new() }).collect();
    for &x in xs {
        let inst = pd_instance(&make_params(x));
        let view = MaskedGraph::unmasked(&inst.index);
        for ((_, evaluator), serie) in methods.iter().zip(series.iter_mut()) {
            let y = time_eval(&view, &inst.vsrc, &inst.vdst, *evaluator);
            serie.points.push((x, y));
        }
    }
    series
}

/// Fig. 5(b): runtime vs input-selection skew `se` on `Pd10k`.
pub fn fig5b(scale: Scale) -> FigureResult {
    let n = match scale {
        Scale::Quick => 2_000,
        Scale::Full => 10_000,
    };
    let xs = [1.1, 1.3, 1.5, 1.7, 1.9, 2.1];
    let methods = [
        ("CflrB", SimilarEvaluator::CflrB(SetBackend::Bit)),
        ("SimProvAlg", SimilarEvaluator::SimProvAlg(SetBackend::Bit)),
        ("SimProvTst", SimilarEvaluator::SimProvTst),
    ];
    let series = sweep_pd(&xs, |se| PdParams { se, ..PdParams::with_size(n) }, &methods);
    FigureResult {
        id: "5b",
        title: format!("Varying selection skew se (Pd{n})"),
        x_label: "se".into(),
        y_label: "runtime (s)".into(),
        series,
    }
}

/// Fig. 5(c): runtime vs activity input mean `λi` on `Pd10k`.
pub fn fig5c(scale: Scale) -> FigureResult {
    let n = match scale {
        Scale::Quick => 2_000,
        Scale::Full => 10_000,
    };
    let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
    let methods = [
        ("CflrB", SimilarEvaluator::CflrB(SetBackend::Bit)),
        ("SimProvAlg", SimilarEvaluator::SimProvAlg(SetBackend::Bit)),
        ("SimProvTst", SimilarEvaluator::SimProvTst),
    ];
    let series = sweep_pd(&xs, |li| PdParams { lambda_in: li, ..PdParams::with_size(n) }, &methods);
    FigureResult {
        id: "5c",
        title: format!("Varying activity input mean λi (Pd{n})"),
        x_label: "λi".into(),
        y_label: "runtime (s)".into(),
        series,
    }
}

/// Fig. 5(d): effectiveness of early stopping — runtime vs the percentile at
/// which `Vsrc` starts, on `Pd50k`.
pub fn fig5d(scale: Scale) -> FigureResult {
    let n = match scale {
        Scale::Quick => 5_000,
        Scale::Full => 50_000,
    };
    let inst = pd_instance(&PdParams::with_size(n));
    let view = MaskedGraph::unmasked(&inst.index);
    let xs = [0.0, 20.0, 40.0, 60.0, 80.0];
    let configs: [(&str, SimilarEvaluator, bool); 4] = [
        ("SimProvAlg", SimilarEvaluator::SimProvAlg(SetBackend::Bit), true),
        ("Alg w/oPrune", SimilarEvaluator::SimProvAlg(SetBackend::Bit), false),
        ("SimProvTst", SimilarEvaluator::SimProvTst, true),
        ("Tst w/oPrune", SimilarEvaluator::SimProvTst, false),
    ];
    let mut series: Vec<Series> = configs
        .iter()
        .map(|(name, ..)| Series { name: name.to_string(), points: Vec::new() })
        .collect();
    for &pct in &xs {
        let vsrc = sources_at_percentile(&inst.graph, pct, 2);
        for ((_, evaluator, early), serie) in configs.iter().zip(series.iter_mut()) {
            let opts = PgSegOptions {
                evaluator: *evaluator,
                early_stop: *early,
                ..PgSegOptions::default()
            };
            let t0 = Instant::now();
            let _ = evaluate_similarity(&view, &vsrc, &inst.vdst, &opts);
            serie.points.push((pct, Some(t0.elapsed().as_secs_f64())));
        }
    }
    FigureResult {
        id: "5d",
        title: format!("Early stopping: varying Vsrc starting rank (Pd{n})"),
        x_label: "src rank (%)".into(),
        y_label: "runtime (s)".into(),
        series,
    }
}

/// The PgSum experiments share one sweep skeleton: generate `Sd` segment
/// sets, compute compaction ratios for PgSum and pSum, average over seeds.
fn sweep_sd<F: Fn(f64) -> SdParams>(xs: &[f64], make_params: F, seeds: &[u64]) -> Vec<Series> {
    let query = PgSumQuery::new(
        PropertyAggregation::ignore_all().with_keys(VertexKind::Activity, &["command"]),
        0,
    );
    let mut psum_series = Series { name: "pSum".into(), points: Vec::new() };
    let mut pgsum_series = Series { name: "PGSum Alg".into(), points: Vec::new() };
    for &x in xs {
        let mut cr_pg = 0.0;
        let mut cr_ps = 0.0;
        for &seed in seeds {
            let out = generate_sd(&SdParams { seed, ..make_params(x) });
            let segments: Vec<SegmentRef> = out
                .segments
                .iter()
                .map(|s| SegmentRef::new(s.vertices.clone(), s.edges.clone()))
                .collect();
            let psg = prov_summary::pgsum(&out.graph, &segments, &query);
            let ps = prov_summary::psum_baseline(&out.graph, &segments, &query);
            cr_pg += psg.compaction_ratio();
            cr_ps += ps.compaction_ratio;
        }
        let k = seeds.len() as f64;
        pgsum_series.points.push((x, Some(cr_pg / k)));
        psum_series.points.push((x, Some(cr_ps / k)));
    }
    vec![psum_series, pgsum_series]
}

fn sd_seeds(scale: Scale) -> Vec<u64> {
    match scale {
        Scale::Quick => vec![42],
        Scale::Full => vec![42, 1042, 2042],
    }
}

/// Fig. 5(e): compaction ratio vs transition concentration `α`.
pub fn fig5e(scale: Scale) -> FigureResult {
    let xs = [0.025, 0.05, 0.1, 0.25, 0.5, 1.0];
    let series = sweep_sd(&xs, |alpha| SdParams { alpha, ..SdParams::default() }, &sd_seeds(scale));
    FigureResult {
        id: "5e",
        title: "Varying concentration α (Sd: k=5, n=20, |S|=10)".into(),
        x_label: "α".into(),
        y_label: "compaction ratio".into(),
        series,
    }
}

/// Fig. 5(f): compaction ratio vs number of activity types `k`.
pub fn fig5f(scale: Scale) -> FigureResult {
    let xs = [3.0, 5.0, 10.0, 15.0, 20.0, 25.0];
    let series =
        sweep_sd(&xs, |k| SdParams { k: k as usize, ..SdParams::default() }, &sd_seeds(scale));
    FigureResult {
        id: "5f",
        title: "Varying activity types k (Sd: α=0.1, n=20, |S|=10)".into(),
        x_label: "k".into(),
        y_label: "compaction ratio".into(),
        series,
    }
}

/// Fig. 5(g): compaction ratio vs segment size `n`.
pub fn fig5g(scale: Scale) -> FigureResult {
    let xs = [5.0, 10.0, 20.0, 30.0, 40.0, 50.0];
    let series =
        sweep_sd(&xs, |n| SdParams { n: n as usize, ..SdParams::default() }, &sd_seeds(scale));
    FigureResult {
        id: "5g",
        title: "Varying number of activities n (Sd: α=0.1, k=5, |S|=10)".into(),
        x_label: "n".into(),
        y_label: "compaction ratio".into(),
        series,
    }
}

/// Fig. 5(h): compaction ratio vs number of segments `|S|`.
pub fn fig5h(scale: Scale) -> FigureResult {
    let xs = [5.0, 10.0, 20.0, 30.0, 40.0];
    let series = sweep_sd(
        &xs,
        |s| SdParams { alpha: 0.25, num_segments: s as usize, ..SdParams::default() },
        &sd_seeds(scale),
    );
    FigureResult {
        id: "5h",
        title: "Varying number of segments |S| (Sd: α=0.25, k=5, n=20)".into(),
        x_label: "|S|".into(),
        y_label: "compaction ratio".into(),
        series,
    }
}

/// Run one figure by id.
pub fn run_figure(id: &str, scale: Scale) -> Option<FigureResult> {
    Some(match id {
        "5a" => fig5a(scale),
        "5b" => fig5b(scale),
        "5c" => fig5c(scale),
        "5d" => fig5d(scale),
        "5e" => fig5e(scale),
        "5f" => fig5f(scale),
        "5g" => fig5g(scale),
        "5h" => fig5h(scale),
        _ => return None,
    })
}

/// All figure ids in paper order.
pub const ALL_FIGURES: [&str; 8] = ["5a", "5b", "5c", "5d", "5e", "5f", "5g", "5h"];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_pgsum_figures_have_expected_shapes() {
        let fig = fig5e(Scale::Quick);
        assert_eq!(fig.series.len(), 2);
        let psum = &fig.series[0];
        let pgsum = &fig.series[1];
        for (ps, pg) in psum.points.iter().zip(pgsum.points.iter()) {
            let (ps, pg) = (ps.1.unwrap(), pg.1.unwrap());
            assert!(pg <= ps + 1e-12, "PgSum never worse than pSum");
            assert!(pg > 0.0 && ps <= 1.0);
        }
        // cr grows with α (allow small non-monotonic noise at single seed).
        let first = pgsum.points.first().unwrap().1.unwrap();
        let last = pgsum.points.last().unwrap().1.unwrap();
        assert!(last >= first - 0.05, "cr should trend upward with α");
    }

    #[test]
    fn render_formats_dnf_and_values() {
        let fig = FigureResult {
            id: "5a",
            title: "t".into(),
            x_label: "N".into(),
            y_label: "runtime (s)".into(),
            series: vec![Series {
                name: "m".into(),
                points: vec![(50.0, Some(0.25)), (100.0, None)],
            }],
        };
        let text = fig.render();
        assert!(text.contains("DNF"));
        assert!(text.contains("250.00ms"));
    }

    #[test]
    fn unknown_figure_id_is_none() {
        assert!(run_figure("9z", Scale::Quick).is_none());
        for id in ALL_FIGURES {
            // Only check resolvability, not execution (expensive).
            assert!(["5a", "5b", "5c", "5d", "5e", "5f", "5g", "5h"].contains(&id));
        }
    }
}
