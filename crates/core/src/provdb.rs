//! `ProvDb`: the lifecycle provenance management facade (Fig. 1).
//!
//! Bundles the ingestion surface (agents, versioned artifacts, activity
//! records — what the paper's non-intrusive CLI toolkit would feed in) with
//! the query facilities (PgSeg segmentation, PgSum summarization, lineage and
//! pattern matching) over the embedded property graph store.

use prov_model::{PropValue, VertexId, VertexKind};
use prov_segment::{PgSegOptions, PgSegQuery, PgSegSession, SegmentGraph};
use prov_store::{ProvGraph, ProvIndex, StoreResult};
use prov_summary::{pgsum, PgSumQuery, Psg, SegmentRef};

/// Description of one artifact an activity generates.
#[derive(Debug, Clone)]
pub struct OutputSpec {
    /// Artifact name (versioned automatically: `name-vN`).
    pub artifact: String,
    /// Properties to attach to the new version.
    pub props: Vec<(String, PropValue)>,
}

impl OutputSpec {
    /// Output with no properties.
    pub fn named(artifact: &str) -> Self {
        OutputSpec { artifact: artifact.to_string(), props: Vec::new() }
    }

    /// Attach a property.
    pub fn with(mut self, key: &str, value: impl Into<PropValue>) -> Self {
        self.props.push((key.to_string(), value.into()));
        self
    }
}

/// One ingested activity (a CLI command execution).
#[derive(Debug, Clone)]
pub struct ActivityRecord {
    /// Command line / operation name.
    pub command: String,
    /// Responsible agent.
    pub agent: Option<VertexId>,
    /// Input entity versions the activity used.
    pub inputs: Vec<VertexId>,
    /// Artifacts generated.
    pub outputs: Vec<OutputSpec>,
    /// Extra activity properties.
    pub props: Vec<(String, PropValue)>,
}

/// Result of ingesting an activity.
#[derive(Debug, Clone)]
pub struct ActivityOutcome {
    /// The activity vertex.
    pub activity: VertexId,
    /// The generated entity versions, in `outputs` order.
    pub outputs: Vec<VertexId>,
}

/// The lifecycle provenance management system facade.
#[derive(Debug, Default)]
pub struct ProvDb {
    graph: ProvGraph,
    index: Option<ProvIndex>,
    /// Next version number per artifact name.
    versions: std::collections::HashMap<String, u32>,
}

impl ProvDb {
    /// Empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wrap an existing provenance graph.
    pub fn from_graph(graph: ProvGraph) -> Self {
        ProvDb { graph, index: None, versions: std::collections::HashMap::new() }
    }

    /// The underlying store (read-only).
    pub fn graph(&self) -> &ProvGraph {
        &self.graph
    }

    /// The frozen snapshot, rebuilt lazily after mutations.
    pub fn index(&mut self) -> &ProvIndex {
        if self.index.is_none() {
            self.index = Some(ProvIndex::build(&self.graph));
        }
        self.index.as_ref().expect("just built")
    }

    fn touch(&mut self) {
        self.index = None;
    }

    // ------------------------------------------------------------------
    // Ingestion
    // ------------------------------------------------------------------

    /// Register a team member.
    pub fn add_agent(&mut self, name: &str) -> VertexId {
        self.touch();
        self.graph.add_agent(name)
    }

    /// Register a new version of an artifact (external addition, e.g. a
    /// downloaded dataset); optionally attributed to an agent.
    pub fn add_artifact_version(
        &mut self,
        artifact: &str,
        attributed_to: Option<VertexId>,
    ) -> StoreResult<VertexId> {
        self.touch();
        let v = self.next_version(artifact);
        let e = self.graph.add_entity(&format!("{artifact}-v{v}"));
        self.graph.set_vprop(e, "filename", artifact);
        self.graph.set_vprop(e, "version", v as i64);
        if let Some(agent) = attributed_to {
            self.graph.add_edge(prov_model::EdgeKind::WasAttributedTo, e, agent)?;
        }
        Ok(e)
    }

    fn next_version(&mut self, artifact: &str) -> u32 {
        let slot = self.versions.entry(artifact.to_string()).or_insert(0);
        *slot += 1;
        *slot
    }

    /// Ingest one activity execution with its used/generated artifacts.
    pub fn record_activity(&mut self, record: ActivityRecord) -> StoreResult<ActivityOutcome> {
        self.touch();
        let a = self.graph.add_activity(&record.command);
        self.graph.set_vprop(a, "command", record.command.as_str());
        for (k, v) in &record.props {
            self.graph.set_vprop(a, k, v.clone());
        }
        if let Some(agent) = record.agent {
            self.graph.add_edge(prov_model::EdgeKind::WasAssociatedWith, a, agent)?;
        }
        for &input in &record.inputs {
            self.graph.add_edge(prov_model::EdgeKind::Used, a, input)?;
        }
        let mut outputs = Vec::with_capacity(record.outputs.len());
        for spec in &record.outputs {
            let v = self.next_version(&spec.artifact);
            let e = self.graph.add_entity(&format!("{}-v{}", spec.artifact, v));
            self.graph.set_vprop(e, "filename", spec.artifact.as_str());
            self.graph.set_vprop(e, "version", v as i64);
            for (k, val) in &spec.props {
                self.graph.set_vprop(e, k, val.clone());
            }
            self.graph.add_edge(prov_model::EdgeKind::WasGeneratedBy, e, a)?;
            // Version lineage: derive from the previous version when present.
            if v > 1 {
                if let Some(prev) =
                    self.graph.vertex_by_name(&format!("{}-v{}", spec.artifact, v - 1))
                {
                    self.graph.add_edge(prov_model::EdgeKind::WasDerivedFrom, e, prev)?;
                }
            }
            outputs.push(e);
        }
        Ok(ActivityOutcome { activity: a, outputs })
    }

    /// Latest version of an artifact, if any.
    pub fn latest_version(&self, artifact: &str) -> Option<VertexId> {
        let v = *self.versions.get(artifact)?;
        self.graph.vertex_by_name(&format!("{artifact}-v{v}"))
    }

    /// Resolve an entity by its versioned name (`model-v2`).
    pub fn entity(&self, versioned_name: &str) -> Option<VertexId> {
        self.graph.vertex_by_name(versioned_name)
    }

    // ------------------------------------------------------------------
    // Queries
    // ------------------------------------------------------------------

    /// Run a one-shot PgSeg query.
    pub fn segment(&mut self, query: PgSegQuery, opts: &PgSegOptions) -> StoreResult<SegmentGraph> {
        self.index();
        let index = self.index.as_ref().expect("built above");
        prov_segment::pgseg(&self.graph, index, query, opts)
    }

    /// Open an interactive PgSeg session (induce once, adjust repeatedly).
    pub fn segment_session(
        &mut self,
        query: PgSegQuery,
        opts: &PgSegOptions,
    ) -> StoreResult<PgSegSession<'_>> {
        self.index();
        let index = self.index.as_ref().expect("built above");
        PgSegSession::open(&self.graph, index, query, opts)
    }

    /// Summarize a set of segments with PgSum.
    pub fn summarize(&self, segments: &[SegmentRef], query: &PgSumQuery) -> Psg {
        pgsum(&self.graph, segments, query)
    }

    /// All ancestors of an entity (transitive inputs through `U`/`G` edges).
    pub fn ancestors_of(&mut self, e: VertexId) -> Vec<VertexId> {
        self.index();
        let index = self.index.as_ref().expect("built above");
        let view = prov_segment::MaskedGraph::unmasked(index);
        let mut seen = vec![false; index.vertex_count()];
        let mut stack = vec![e];
        seen[e.index()] = true;
        let mut out = Vec::new();
        while let Some(v) = stack.pop() {
            for w in view.upstream(v) {
                if !seen[w.index()] {
                    seen[w.index()] = true;
                    out.push(w);
                    stack.push(w);
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// Everything derived (transitively) from an entity.
    pub fn descendants_of(&mut self, e: VertexId) -> Vec<VertexId> {
        self.index();
        let index = self.index.as_ref().expect("built above");
        let view = prov_segment::MaskedGraph::unmasked(index);
        let mut seen = vec![false; index.vertex_count()];
        let mut stack = vec![e];
        seen[e.index()] = true;
        let mut out = Vec::new();
        while let Some(v) = stack.pop() {
            for w in view.downstream(v) {
                if !seen[w.index()] {
                    seen[w.index()] = true;
                    out.push(w);
                    stack.push(w);
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// Export to the PROV-JSON-style interchange format.
    pub fn export_json(&self) -> String {
        prov_store::json::to_json_string(&self.graph)
    }

    /// Import from the interchange format.
    pub fn import_json(data: &str) -> StoreResult<ProvDb> {
        let graph = prov_store::json::from_json_string(data)?;
        let mut versions = std::collections::HashMap::new();
        for v in graph.vertices_of_kind(VertexKind::Entity) {
            if let (Some(name), Some(ver)) = (
                graph.vprop(*v, "filename").and_then(|p| p.as_str().map(str::to_string)),
                graph.vprop(*v, "version").and_then(|p| p.as_int()),
            ) {
                let slot = versions.entry(name).or_insert(0u32);
                *slot = (*slot).max(ver as u32);
            }
        }
        Ok(ProvDb { graph, index: None, versions })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_project() -> (ProvDb, VertexId, VertexId) {
        let mut db = ProvDb::new();
        let alice = db.add_agent("alice");
        let data = db.add_artifact_version("dataset", Some(alice)).unwrap();
        let out = db
            .record_activity(ActivityRecord {
                command: "train".into(),
                agent: Some(alice),
                inputs: vec![data],
                outputs: vec![
                    OutputSpec::named("weights").with("acc", 0.7),
                    OutputSpec::named("log"),
                ],
                props: vec![("opt".into(), "-gpu".into())],
            })
            .unwrap();
        (db, data, out.outputs[0])
    }

    #[test]
    fn ingestion_builds_prov_structure() {
        let (db, data, weights) = small_project();
        let g = db.graph();
        assert_eq!(g.kind_count(VertexKind::Entity), 3);
        assert_eq!(g.kind_count(VertexKind::Activity), 1);
        assert_eq!(g.vertex_name(weights), Some("weights-v1"));
        assert_eq!(g.vprop(weights, "acc").and_then(|v| v.as_float()), Some(0.7));
        assert_eq!(g.vertex_name(data), Some("dataset-v1"));
        g.validate_acyclic().unwrap();
    }

    #[test]
    fn versioning_links_derivations() {
        let (mut db, data, w1) = small_project();
        let out = db
            .record_activity(ActivityRecord {
                command: "train".into(),
                agent: None,
                inputs: vec![data],
                outputs: vec![OutputSpec::named("weights").with("acc", 0.75)],
                props: vec![],
            })
            .unwrap();
        let w2 = out.outputs[0];
        assert_eq!(db.graph().vertex_name(w2), Some("weights-v2"));
        assert_eq!(db.latest_version("weights"), Some(w2));
        // D edge w2 -> w1 exists.
        let derived: Vec<VertexId> =
            db.graph().out_neighbors(w2, prov_model::EdgeKind::WasDerivedFrom).collect();
        assert_eq!(derived, vec![w1]);
    }

    #[test]
    fn lineage_queries() {
        let (mut db, data, weights) = small_project();
        let anc = db.ancestors_of(weights);
        assert!(anc.contains(&data));
        let desc = db.descendants_of(data);
        assert!(desc.contains(&weights));
        assert!(!db.ancestors_of(data).contains(&weights));
    }

    #[test]
    fn segment_and_summarize_roundtrip() {
        let (mut db, data, weights) = small_project();
        let seg = db
            .segment(PgSegQuery::between(vec![data], vec![weights]), &PgSegOptions::default())
            .unwrap();
        assert!(seg.vertex_count() >= 3);
        let psg = db.summarize(&[SegmentRef::from(&seg)], &PgSumQuery::fig2e());
        assert!(psg.vertex_count() >= 3);
        assert!(psg.compaction_ratio() <= 1.0);
    }

    #[test]
    fn json_round_trip_preserves_versions() {
        let (db, ..) = small_project();
        let json = db.export_json();
        let mut db2 = ProvDb::import_json(&json).unwrap();
        assert_eq!(db2.graph().vertex_count(), db.graph().vertex_count());
        // Version counters restored: the next weights version is v2.
        let out = db2
            .record_activity(ActivityRecord {
                command: "train".into(),
                agent: None,
                inputs: vec![],
                outputs: vec![OutputSpec::named("weights")],
                props: vec![],
            })
            .unwrap();
        assert_eq!(db2.graph().vertex_name(out.outputs[0]), Some("weights-v2"));
    }

    #[test]
    fn entity_lookup_by_versioned_name() {
        let (db, data, _) = small_project();
        assert_eq!(db.entity("dataset-v1"), Some(data));
        assert_eq!(db.entity("dataset-v9"), None);
    }
}
