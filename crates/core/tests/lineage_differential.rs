//! Epoch-scratch lineage differential (ISSUE 5): the allocation-free BFS
//! engine must answer exactly like the frozen seed path on random `Pd`
//! workloads — same sorted closure, both directions, from entity and
//! activity starts alike — and its bounded variants must be consistent
//! prefixes/rings of the unbounded walk. Extended for ISSUE 8: the
//! `compile_lineage` lowering onto the query IR must answer byte-identically
//! to the engine it replaced, at chunk counts 1/2/4/8.

use proptest::prelude::*;
use prov_core::{compile_lineage, lineage_over, lineage_reference, LineageBound, LineageDirection};
use prov_model::VertexKind;
use prov_store::query::evaluate_with_frontier_min;
use prov_store::{Plan, ProvIndex};
use prov_workload::{generate_pd, PdParams};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn epoch_bfs_matches_seed_lineage_on_pd(
        n in 60usize..400,
        seed in 0u64..1_000,
        se in 1.1f64..2.1,
        start_pick in any::<prop::sample::Index>(),
        kind_pick in 0usize..2,
    ) {
        let graph = generate_pd(&PdParams { n, seed, se, ..PdParams::default() });
        let idx = ProvIndex::build(&graph);
        let kind = [VertexKind::Entity, VertexKind::Activity][kind_pick];
        let of_kind = graph.vertices_of_kind(kind);
        // Pd always seeds entities and at least one activity.
        prop_assert!(!of_kind.is_empty());
        let start = *start_pick.get(of_kind);
        for dir in [LineageDirection::Ancestors, LineageDirection::Descendants] {
            let new = lineage_over(&idx, start, dir, LineageBound::Unbounded);
            let old = lineage_reference(&idx, start, dir);
            prop_assert_eq!(&new, &old, "closure diverged at {} {:?}", start, dir);
            prop_assert!(new.windows(2).all(|w| w[0] < w[1]), "unsorted");

            // Within(d) is monotone in d and reaches the closure; Exactly(d)
            // rings partition Within's increments.
            let mut prev = Vec::new();
            for d in 1..=8u32 {
                let within = lineage_over(&idx, start, dir, LineageBound::Within(d));
                prop_assert!(prev.iter().all(|v| within.contains(v)), "Within not monotone");
                let ring = lineage_over(&idx, start, dir, LineageBound::Exactly(d));
                let grew: Vec<_> =
                    within.iter().filter(|v| !prev.contains(v)).copied().collect();
                prop_assert_eq!(&ring, &grew, "ring {} != Within increment", d);
                prev = within;
            }
            prop_assert!(prev.iter().all(|v| new.contains(v)), "Within(8) ⊄ closure");
        }
    }

    /// ISSUE 8 acceptance: lineage compiled onto the query IR answers
    /// byte-identically to the frozen engine for every bound shape, at chunk
    /// counts 1/2/4/8 with the inline-level threshold forced to 0 so the
    /// chunked fan-out runs even on tiny frontiers.
    #[test]
    fn compiled_lineage_matches_engine_on_pd(
        n in 60usize..300,
        seed in 0u64..1_000,
        se in 1.1f64..2.1,
        start_pick in any::<prop::sample::Index>(),
    ) {
        let graph = generate_pd(&PdParams { n, seed, se, ..PdParams::default() });
        let idx = ProvIndex::build(&graph);
        let start = *start_pick.get(graph.vertices_of_kind(VertexKind::Entity));
        for dir in [LineageDirection::Ancestors, LineageDirection::Descendants] {
            for bound in [
                LineageBound::Unbounded,
                LineageBound::Within(0),
                LineageBound::Within(3),
                LineageBound::Exactly(0),
                LineageBound::Exactly(2),
            ] {
                let reference = lineage_over(&idx, start, dir, bound);
                let plan = Plan::compile(compile_lineage(start, dir, bound))
                    .expect("lineage pipelines always compile");
                for threads in [1usize, 2, 4, 8] {
                    let out = evaluate_with_frontier_min(&graph, &idx, &plan, idx.cursor(), threads, 0)
                        .expect("fresh watermark is never stale");
                    prop_assert_eq!(
                        &out.rows, &reference,
                        "{:?} {:?} chunks {}", dir, bound, threads
                    );
                }
            }
        }
    }
}
