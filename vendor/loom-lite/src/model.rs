//! The model driver: re-runs a closure once per schedule until the DFS over
//! interleavings is exhausted (or a bound is hit), reporting failures with
//! the exact committed-op trace that produced them.

use crate::exec::{self, ExecState, Node, Shared, ThreadSlot, TState};
use std::any::Any;
use std::panic;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, Once};

/// Exploration parameters. The defaults exhaust the full schedule tree up to
/// a generous per-schedule step limit; set [`Builder::preemption_bound`] to
/// focus on the low-preemption corner of large models.
#[derive(Debug, Clone)]
pub struct Builder {
    /// CHESS-style budget: how many times the scheduler may switch away from
    /// a thread that could have continued. `None` = unbounded (full DFS).
    pub preemption_bound: Option<usize>,
    /// Stop after this many executions (completed + pruned), marking the
    /// report incomplete — a safety net for accidentally huge models.
    pub max_schedules: usize,
    /// Per-execution committed-op limit; exceeding it fails the check
    /// (livelock or runaway model).
    pub max_steps: usize,
}

impl Default for Builder {
    fn default() -> Self {
        Self { preemption_bound: None, max_schedules: 1_000_000, max_steps: 20_000 }
    }
}

/// What an exploration did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Report {
    /// Executions run to completion (distinct schedules witnessed).
    pub schedules: usize,
    /// Executions cut short by sleep-set pruning (provably redundant).
    pub pruned: usize,
    /// True when the DFS exhausted the tree within `max_schedules`.
    pub complete: bool,
}

impl Builder {
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        Self::default()
    }

    /// Explore every schedule of `f`; panics with the failing schedule's
    /// trace on the first assertion failure, deadlock, or lost wakeup.
    pub fn check<F>(&self, f: F) -> Report
    where
        F: Fn() + Send + Sync + 'static,
    {
        match self.check_result(f) {
            Ok(report) => report,
            Err(msg) => panic!("loom-lite model check failed\n{msg}"),
        }
    }

    /// Like [`Builder::check`], but returns the failure report instead of
    /// panicking — for asserting that a seeded bug *is* caught, trace
    /// included.
    pub fn check_result<F>(&self, f: F) -> Result<Report, String>
    where
        F: Fn() + Send + Sync + 'static,
    {
        install_abort_hook();
        let f = Arc::new(f);
        let bound = self.preemption_bound.unwrap_or(usize::MAX);
        let mut plan: Vec<Node> = Vec::new();
        let mut schedules = 0usize;
        let mut pruned = 0usize;
        loop {
            let (failure, was_pruned, next_plan) =
                run_one(&f, std::mem::take(&mut plan), bound, self.max_steps);
            plan = next_plan;
            if let Some(msg) = failure {
                return Err(msg);
            }
            if was_pruned {
                pruned += 1;
            } else {
                schedules += 1;
            }
            if schedules + pruned >= self.max_schedules {
                return Ok(Report { schedules, pruned, complete: false });
            }
            if !exec::next_schedule(&mut plan, bound) {
                return Ok(Report { schedules, pruned, complete: true });
            }
        }
    }
}

/// Exhaustively model-check `f` with default bounds. See [`Builder`].
pub fn model<F>(f: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    Builder::new().check(f)
}

fn lock_state(shared: &Shared) -> MutexGuard<'_, ExecState> {
    shared.m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Run one execution following (then extending) `plan`. Returns the failure
/// message if any, whether the execution was sleep-set pruned, and the plan
/// as grown/consumed by this execution.
fn run_one<F>(
    f: &Arc<F>,
    plan: Vec<Node>,
    bound: usize,
    max_steps: usize,
) -> (Option<String>, bool, Vec<Node>)
where
    F: Fn() + Send + Sync + 'static,
{
    let shared = Arc::new(Shared {
        m: Mutex::new(ExecState {
            threads: vec![ThreadSlot {
                state: TState::Paused(exec::Op::Start),
                name: Some("model".into()),
                result: None,
                op_result: 0,
                timed_out: false,
                os: None,
            }],
            objects: Vec::new(),
            plan,
            step: 0,
            cur_sleep: Vec::new(),
            preemptions: 0,
            bound,
            max_steps,
            active: None,
            last_running: None,
            trace: Vec::new(),
            failure: None,
            pruned: false,
            aborting: false,
            exited: 0,
        }),
        cv: Condvar::new(),
    });

    let f2 = Arc::clone(f);
    let body: Box<dyn FnOnce() -> Box<dyn Any + Send> + Send> = Box::new(move || {
        f2();
        Box::new(())
    });
    let shared2 = Arc::clone(&shared);
    let handle = std::thread::Builder::new()
        .name("loom-lite-0".into())
        .spawn(move || exec::run_modeled(shared2, 0, body))
        .expect("failed to spawn model thread");

    {
        let mut st = lock_state(&shared);
        st.threads[0].os = Some(handle);
        exec::advance(&mut st);
    }
    shared.cv.notify_all();

    // Wait for every modeled OS thread (the set can grow while we wait) to
    // exit its wrapper, then join the carriers.
    let handles = {
        let mut st = lock_state(&shared);
        while st.exited < st.threads.len() {
            st = shared.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        st.threads.iter_mut().filter_map(|slot| slot.os.take()).collect::<Vec<_>>()
    };
    for h in handles {
        let _ = h.join();
    }

    let mut st = lock_state(&shared);
    let failure = st.failure.take();
    let was_pruned = st.pruned;
    let plan = std::mem::take(&mut st.plan);
    (failure, was_pruned, plan)
}

/// Process-wide panic hook that silences the `AbortToken` unwinds used to
/// tear down modeled threads when an execution aborts (failure or prune);
/// every other panic goes to the previously installed hook.
fn install_abort_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<exec::AbortToken>().is_some() {
                return;
            }
            prev(info);
        }));
    });
}
