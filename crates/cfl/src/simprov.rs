//! The `SimProv` grammar in its three published forms.
//!
//! * [`surface`] — the reading grammar of Sec. III-A:
//!   `SimProv → G⁻¹ E SimProv E G | U⁻¹ A SimProv A U | G⁻¹ vj G`.
//!   Words are *path segment labels* (endpoint labels omitted); the language is
//!   a palindrome language and provably not regular.
//! * [`normal_form_fig6`] — the paper's Fig. 6 normal form with nonterminals
//!   `Qd, Lg, Rg, La, Ra, Lu, Ru, Le, Re` (start `Re`), the form CflrB runs on.
//! * [`rewritten_fig4`] — the paper's Fig. 4 rewriting with only two
//!   nonterminals `Ee ⊆ E×E`, `Aa ⊆ A×A` (start `Ee`), the form SimProvAlg
//!   exploits (symmetry, combined rules, early stopping).
//!
//! Semantics reminder: a SimProv path runs *downstream* from a source entity
//! via inverse ancestry labels (`U⁻¹`, `G⁻¹`) to some destination `vj ∈ Vdst`,
//! then *upstream* via forward labels (`G`, `U`) for the same number of steps —
//! reaching ancestors of `vj` that contribute to it "in a similar way" as the
//! source does.

use crate::grammar::Grammar;
use crate::symbol::{NonTerminal, Symbol, Terminal};
use prov_model::{EdgeKind, VertexId, VertexKind};

/// Handles to the interesting nonterminals of a SimProv grammar build.
#[derive(Debug, Clone, Copy)]
pub struct SimProvHandles {
    /// The start symbol (answers are read off this relation).
    pub start: NonTerminal,
    /// The entity-pair relation (`Re` in Fig. 6, `Ee` in Fig. 4); equals
    /// `start` for the rewritten form.
    pub entity_pairs: NonTerminal,
    /// The activity-pair relation, when the form has one (`Aa` in Fig. 4).
    pub activity_pairs: Option<NonTerminal>,
}

fn u_fwd() -> Terminal {
    Terminal::fwd(EdgeKind::Used)
}
fn u_inv() -> Terminal {
    Terminal::inv(EdgeKind::Used)
}
fn g_fwd() -> Terminal {
    Terminal::fwd(EdgeKind::WasGeneratedBy)
}
fn g_inv() -> Terminal {
    Terminal::inv(EdgeKind::WasGeneratedBy)
}
fn e_label() -> Terminal {
    Terminal::VertexLabel(VertexKind::Entity)
}
fn a_label() -> Terminal {
    Terminal::VertexLabel(VertexKind::Activity)
}

/// Build the surface grammar of Sec. III-A for destination set `vdst`.
pub fn surface(vdst: &[VertexId]) -> (Grammar, SimProvHandles) {
    let mut g = Grammar::new();
    let s = g.nonterminal("SimProv");
    // SimProv → G⁻¹ E SimProv E G
    g.rule(
        s,
        [
            Symbol::T(g_inv()),
            Symbol::T(e_label()),
            Symbol::N(s),
            Symbol::T(e_label()),
            Symbol::T(g_fwd()),
        ],
    );
    // SimProv → U⁻¹ A SimProv A U
    g.rule(
        s,
        [
            Symbol::T(u_inv()),
            Symbol::T(a_label()),
            Symbol::N(s),
            Symbol::T(a_label()),
            Symbol::T(u_fwd()),
        ],
    );
    // SimProv → G⁻¹ vj G   ∀ vj ∈ Vdst
    for &vj in vdst {
        g.rule(s, [Symbol::T(g_inv()), Symbol::T(Terminal::VertexIs(vj)), Symbol::T(g_fwd())]);
    }
    g.set_start(s);
    (g, SimProvHandles { start: s, entity_pairs: s, activity_pairs: None })
}

/// Build the Fig. 6 normal form (`r0`–`r8`, start `Re`).
pub fn normal_form_fig6(vdst: &[VertexId]) -> (Grammar, SimProvHandles) {
    let mut g = Grammar::new();
    let qd = g.nonterminal("Qd");
    let lg = g.nonterminal("Lg");
    let rg = g.nonterminal("Rg");
    let la = g.nonterminal("La");
    let ra = g.nonterminal("Ra");
    let lu = g.nonterminal("Lu");
    let ru = g.nonterminal("Ru");
    let le = g.nonterminal("Le");
    let re = g.nonterminal("Re");
    // r0: Qd → vj
    for &vj in vdst {
        g.rule(qd, [Symbol::T(Terminal::VertexIs(vj))]);
    }
    // r1: Lg → G⁻¹ Qd | G⁻¹ Re
    g.rule(lg, [Symbol::T(g_inv()), Symbol::N(qd)]);
    g.rule(lg, [Symbol::T(g_inv()), Symbol::N(re)]);
    // r2: Rg → Lg G
    g.rule(rg, [Symbol::N(lg), Symbol::T(g_fwd())]);
    // r3: La → A Rg
    g.rule(la, [Symbol::T(a_label()), Symbol::N(rg)]);
    // r4: Ra → La A
    g.rule(ra, [Symbol::N(la), Symbol::T(a_label())]);
    // r5: Lu → U⁻¹ Ra
    g.rule(lu, [Symbol::T(u_inv()), Symbol::N(ra)]);
    // r6: Ru → Lu U
    g.rule(ru, [Symbol::N(lu), Symbol::T(u_fwd())]);
    // r7: Le → E Ru
    g.rule(le, [Symbol::T(e_label()), Symbol::N(ru)]);
    // r8: Re → Le E
    g.rule(re, [Symbol::N(le), Symbol::T(e_label())]);
    g.set_start(re);
    (g, SimProvHandles { start: re, entity_pairs: re, activity_pairs: None })
}

/// Build the Fig. 4 rewritten grammar (start `Ee`).
pub fn rewritten_fig4(vdst: &[VertexId]) -> (Grammar, SimProvHandles) {
    let mut g = Grammar::new();
    let ee = g.nonterminal("Ee");
    let aa = g.nonterminal("Aa");
    // r'1: Ee → vj | U⁻¹ Aa U | E Ee E
    for &vj in vdst {
        g.rule(ee, [Symbol::T(Terminal::VertexIs(vj))]);
    }
    g.rule(ee, [Symbol::T(u_inv()), Symbol::N(aa), Symbol::T(u_fwd())]);
    g.rule(ee, [Symbol::T(e_label()), Symbol::N(ee), Symbol::T(e_label())]);
    // r'2: Aa → G⁻¹ Ee G | A Aa A
    g.rule(aa, [Symbol::T(g_inv()), Symbol::N(ee), Symbol::T(g_fwd())]);
    g.rule(aa, [Symbol::T(a_label()), Symbol::N(aa), Symbol::T(a_label())]);
    g.set_start(ee);
    (g, SimProvHandles { start: ee, entity_pairs: ee, activity_pairs: Some(aa) })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> VertexId {
        VertexId::new(i)
    }

    #[test]
    fn surface_accepts_palindrome_segment_labels() {
        let (g, h) = surface(&[v(7)]);
        // Base: G⁻¹ v7 G (an activity pair sharing generated entity v7).
        assert!(g.accepts(h.start, &[g_inv(), Terminal::VertexIs(v(7)), g_fwd()]));
        // One U-wrap: U⁻¹ A G⁻¹ v7 G A U (the Fig. 2(d) Q1 shape).
        assert!(g.accepts(
            h.start,
            &[u_inv(), a_label(), g_inv(), Terminal::VertexIs(v(7)), g_fwd(), a_label(), u_fwd()]
        ));
        // Two wraps: U⁻¹ A G⁻¹ E U⁻¹ A G⁻¹ v7 G A U E G A U — mixed nesting.
        assert!(g.accepts(
            h.start,
            &[
                u_inv(),
                a_label(),
                g_inv(),
                e_label(),
                u_inv(),
                a_label(),
                g_inv(),
                Terminal::VertexIs(v(7)),
                g_fwd(),
                a_label(),
                u_fwd(),
                e_label(),
                g_fwd(),
                a_label(),
                u_fwd()
            ]
        ));
    }

    #[test]
    fn surface_rejects_non_palindromes() {
        let (g, h) = surface(&[v(7)]);
        // Mismatched wrap types.
        assert!(!g.accepts(
            h.start,
            &[u_inv(), a_label(), g_inv(), Terminal::VertexIs(v(7)), g_fwd(), e_label(), g_fwd()]
        ));
        // Wrong anchor.
        assert!(!g.accepts(h.start, &[g_inv(), Terminal::VertexIs(v(8)), g_fwd()]));
        // Unbalanced.
        assert!(!g.accepts(h.start, &[g_inv(), Terminal::VertexIs(v(7))]));
    }

    #[test]
    fn fig6_words_wrap_endpoints_with_entity_labels() {
        let (g, h) = normal_form_fig6(&[v(3)]);
        // Minimal Re word: E U⁻¹ A G⁻¹ v3 G A U E
        assert!(g.accepts(
            h.start,
            &[
                e_label(),
                u_inv(),
                a_label(),
                g_inv(),
                Terminal::VertexIs(v(3)),
                g_fwd(),
                a_label(),
                u_fwd(),
                e_label()
            ]
        ));
        // Without the E wraps it is not an Re word.
        assert!(!g.accepts(
            h.start,
            &[u_inv(), a_label(), g_inv(), Terminal::VertexIs(v(3)), g_fwd(), a_label(), u_fwd()]
        ));
    }

    #[test]
    fn fig4_is_anchor_or_deeper() {
        let (g, h) = rewritten_fig4(&[v(3)]);
        // Base anchor word.
        assert!(g.accepts(h.start, &[Terminal::VertexIs(v(3))]));
        // One level: U⁻¹ (G⁻¹ v3 G) U
        assert!(g.accepts(h.start, &[u_inv(), g_inv(), Terminal::VertexIs(v(3)), g_fwd(), u_fwd()]));
        // Optional vertex-label wraps are allowed.
        assert!(g.accepts(
            h.start,
            &[e_label(), u_inv(), g_inv(), Terminal::VertexIs(v(3)), g_fwd(), u_fwd(), e_label()]
        ));
        // Aa relation: G⁻¹ v3 G.
        let aa = h.activity_pairs.expect("fig4 exposes Aa");
        assert!(g.accepts(aa, &[g_inv(), Terminal::VertexIs(v(3)), g_fwd()]));
        assert!(!g.accepts(aa, &[Terminal::VertexIs(v(3))]));
    }

    #[test]
    fn multiple_destinations_multiple_anchors() {
        let (g, h) = rewritten_fig4(&[v(1), v(2)]);
        assert!(g.accepts(h.start, &[Terminal::VertexIs(v(1))]));
        assert!(g.accepts(h.start, &[Terminal::VertexIs(v(2))]));
        assert!(!g.accepts(h.start, &[Terminal::VertexIs(v(3))]));
    }

    #[test]
    fn grammars_render_paper_shapes() {
        let (g6, _) = normal_form_fig6(&[v(0)]);
        let text = g6.render();
        assert!(text.contains("Lg →"), "{text}");
        assert!(text.contains("Re → Le E"), "{text}");
        let (g4, _) = rewritten_fig4(&[v(0)]);
        let t4 = g4.render();
        assert!(t4.contains("Aa → G⁻¹ Ee G"), "{t4}");
    }
}
