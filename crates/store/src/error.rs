//! Store error types.

use prov_model::{EdgeId, EdgeTypeError, VertexId};

/// Errors produced by the property graph store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// An edge violated the PROV domain/range rules.
    InvalidEdge(EdgeTypeError),
    /// A vertex id was out of range.
    UnknownVertex(VertexId),
    /// An edge id was out of range.
    UnknownEdge(EdgeId),
    /// Graph validation found a directed cycle (provenance graphs are DAGs).
    CycleDetected {
        /// A vertex participating in the cycle.
        on: VertexId,
    },
    /// JSON import failed.
    Import(String),
    /// A query was malformed (e.g. PgSeg source/destination vertices that are
    /// not entities). Distinct from [`StoreError::Import`]: the *store* is
    /// fine, the *request* is not — service layers map this to a client
    /// error rather than a data corruption report.
    InvalidQuery(String),
    /// The dense `u32` id space of vertices or edges is exhausted. Before
    /// this variant the store silently wrapped past `u32::MAX` and started
    /// clobbering ids.
    CapacityExceeded {
        /// Which id space ran out (`"vertex"` or `"edge"`).
        what: &'static str,
    },
    /// The durable storage backend failed (I/O error, failed fsync, or a
    /// crash injected by the failpoint layer). Once a write-ahead-log engine
    /// reports this it stays *poisoned*: the in-memory store may already be
    /// ahead of the durable state, so further commits are refused until the
    /// database is reopened through recovery.
    StorageUnavailable(String),
    /// Durable state failed integrity checks in a way recovery must not
    /// paper over: a corrupt snapshot checksum, or a CRC-valid log record
    /// whose decoded operation cannot be replayed. Distinct from a torn
    /// *tail* (an interrupted append), which recovery truncates silently.
    CorruptLog(String),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::InvalidEdge(e) => write!(f, "invalid edge: {e}"),
            StoreError::UnknownVertex(v) => write!(f, "unknown vertex {v}"),
            StoreError::UnknownEdge(e) => write!(f, "unknown edge {e}"),
            StoreError::CycleDetected { on } => {
                write!(f, "provenance graph must be acyclic; cycle through {on}")
            }
            StoreError::Import(msg) => write!(f, "import error: {msg}"),
            StoreError::InvalidQuery(msg) => write!(f, "invalid query: {msg}"),
            StoreError::CapacityExceeded { what } => {
                write!(f, "store capacity exceeded: dense u32 {what} id space is full")
            }
            StoreError::StorageUnavailable(msg) => {
                write!(f, "storage unavailable: {msg}")
            }
            StoreError::CorruptLog(msg) => write!(f, "corrupt log: {msg}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<EdgeTypeError> for StoreError {
    fn from(e: EdgeTypeError) -> Self {
        StoreError::InvalidEdge(e)
    }
}

/// Store result alias.
pub type StoreResult<T> = Result<T, StoreError>;

#[cfg(test)]
mod tests {
    use super::*;
    use prov_model::{EdgeKind, VertexKind};

    #[test]
    fn display_is_informative() {
        let err: StoreError = EdgeTypeError {
            kind: EdgeKind::Used,
            src: VertexKind::Entity,
            dst: VertexKind::Entity,
        }
        .into();
        assert!(err.to_string().contains("invalid edge"));
        assert!(StoreError::UnknownVertex(VertexId::new(3)).to_string().contains("v3"));
        assert!(StoreError::CycleDetected { on: VertexId::new(1) }.to_string().contains("acyclic"));
        assert!(StoreError::InvalidQuery("vsrc empty".into())
            .to_string()
            .contains("invalid query: vsrc empty"));
        assert!(StoreError::CapacityExceeded { what: "vertex" }
            .to_string()
            .contains("vertex id space is full"));
        assert!(StoreError::StorageUnavailable("fsync failed".into())
            .to_string()
            .contains("storage unavailable: fsync failed"));
        assert!(StoreError::CorruptLog("bad snapshot crc".into())
            .to_string()
            .contains("corrupt log: bad snapshot crc"));
    }
}
