//! The provenance summary graph `Psg(M, E, ρ, γ)` (Sec. IV-A.2).

use crate::merge::MergeResult;
use crate::union::{ClassId, G0};
use prov_model::{EdgeKind, VertexId, VertexKind};
use prov_store::hash::FxHashMap;
use prov_store::ProvGraph;

/// One summary vertex `µ ⊆ [v]`.
#[derive(Debug, Clone)]
pub struct PsgVertex {
    /// Equivalence class (`ρ(µ)`).
    pub class: ClassId,
    /// Vertex kind (all members share it).
    pub kind: VertexKind,
    /// Display label: representative name + provenance-type tag.
    pub label: String,
    /// Members as `(segment index, underlying vertex)` pairs.
    pub members: Vec<(u32, VertexId)>,
}

/// One summary edge with its appearance frequency `γ`.
#[derive(Debug, Clone)]
pub struct PsgEdge {
    /// Source summary vertex (index into [`Psg::vertices`]).
    pub src: u32,
    /// Destination summary vertex.
    pub dst: u32,
    /// Relationship kind.
    pub kind: EdgeKind,
    /// `γ(e)` — fraction of input segments containing such an edge.
    pub frequency: f64,
}

/// A provenance summary graph.
#[derive(Debug, Clone, Default)]
pub struct Psg {
    /// Summary vertices.
    pub vertices: Vec<PsgVertex>,
    /// Summary edges.
    pub edges: Vec<PsgEdge>,
    /// Number of input segments (`|S|`).
    pub segment_count: usize,
    /// `|⋃ᵢ VSᵢ|` — total input vertex instances (the compaction-ratio
    /// denominator).
    pub input_vertex_count: usize,
}

impl Psg {
    /// `|M|` — number of summary vertices.
    pub fn vertex_count(&self) -> usize {
        self.vertices.len()
    }

    /// Number of summary edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// The compaction ratio `cr = |M| / |⋃ᵢ VSᵢ|` (lower is better).
    pub fn compaction_ratio(&self) -> f64 {
        if self.input_vertex_count == 0 {
            return 1.0;
        }
        self.vertex_count() as f64 / self.input_vertex_count as f64
    }

    /// Assemble a Psg from the merge result.
    pub fn from_merge(graph: &ProvGraph, g0: &G0, merged: &MergeResult) -> Psg {
        // Count how many groups share each class to suffix type tags (t1, t2,
        // ... as in Fig. 2(e)).
        let mut class_seen: FxHashMap<ClassId, u32> = FxHashMap::default();
        let mut vertices: Vec<PsgVertex> = Vec::with_capacity(merged.members.len());
        for members in &merged.members {
            let first = members[0];
            let node = &g0.nodes[first as usize];
            let class = node.class;
            let tag = {
                let c = class_seen.entry(class).or_insert(0);
                *c += 1;
                *c
            };
            let base = g0.class_names[class.0 as usize].clone();
            vertices.push(PsgVertex {
                class,
                kind: graph.vertex_kind(node.vertex),
                label: format!("{base} (t{tag})"),
                members: members
                    .iter()
                    .map(|&m| (g0.nodes[m as usize].segment, g0.nodes[m as usize].vertex))
                    .collect(),
            });
        }
        // Relabel: classes represented by a single group drop the tag.
        for v in &mut vertices {
            if class_seen[&v.class] == 1 {
                if let Some(idx) = v.label.rfind(" (t") {
                    v.label.truncate(idx);
                }
            }
        }

        // Edges with per-segment support.
        let mut support: FxHashMap<(u32, u8, u32), Vec<bool>> = FxHashMap::default();
        for (i, adj) in g0.out_adj.iter().enumerate() {
            let s = merged.group_of[i];
            let seg = g0.nodes[i].segment as usize;
            for &(k, d) in adj {
                let d2 = merged.group_of[d as usize];
                let entry =
                    support.entry((s, k, d2)).or_insert_with(|| vec![false; g0.segment_count]);
                entry[seg] = true;
            }
        }
        let mut edges: Vec<PsgEdge> = support
            .into_iter()
            .map(|((s, k, d), segs)| PsgEdge {
                src: s,
                dst: d,
                kind: EdgeKind::from_index(k as usize).expect("valid kind"),
                frequency: segs.iter().filter(|&&x| x).count() as f64
                    / g0.segment_count.max(1) as f64,
            })
            .collect();
        edges.sort_by_key(|e| (e.src, e.dst, e.kind.as_index()));

        Psg { vertices, edges, segment_count: g0.segment_count, input_vertex_count: g0.len() }
    }

    /// Render as Graphviz DOT with frequency-annotated edges.
    pub fn to_dot(&self) -> String {
        let mut out = String::from("digraph psg {\n  rankdir=RL;\n");
        for (i, v) in self.vertices.iter().enumerate() {
            let shape = match v.kind {
                VertexKind::Entity => "ellipse",
                VertexKind::Activity => "box",
                VertexKind::Agent => "house",
            };
            out.push_str(&format!("  m{} [label=\"{}\" shape={}];\n", i, v.label, shape));
        }
        for e in &self.edges {
            out.push_str(&format!(
                "  m{} -> m{} [label=\"{} {:.0}%\"];\n",
                e.src,
                e.dst,
                e.kind.letter(),
                e.frequency * 100.0
            ));
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregation::PropertyAggregation;
    use crate::merge::merge;
    use crate::segment_ref::SegmentRef;
    use crate::union::build_g0;
    use prov_model::EdgeKind as EK;

    fn two_plus_one() -> (ProvGraph, Vec<SegmentRef>) {
        // Segments 1 & 2: d <-U- t <-G- w. Segment 3: d <-U- t (no output).
        let mut g = ProvGraph::new();
        let mut segs = Vec::new();
        for i in 0..3 {
            let d = g.add_entity(&format!("data{i}"));
            let t = g.add_activity("train");
            let mut vs = vec![d, t];
            let mut es = vec![g.add_edge(EK::Used, t, d).unwrap()];
            if i < 2 {
                let w = g.add_entity(&format!("w{i}"));
                es.push(g.add_edge(EK::WasGeneratedBy, w, t).unwrap());
                vs.push(w);
            }
            segs.push(SegmentRef::new(vs, es));
        }
        (g, segs)
    }

    fn summarize(g: &ProvGraph, segs: &[SegmentRef], k: usize) -> Psg {
        let g0 = build_g0(g, segs, &PropertyAggregation::ignore_all(), k);
        let merged = merge(&g0);
        Psg::from_merge(g, &g0, &merged)
    }

    #[test]
    fn frequencies_reflect_segment_support() {
        let (g, segs) = two_plus_one();
        let psg = summarize(&g, &segs, 1);
        // The U edge appears in all 3 segments... but k=1 gives the lone
        // `train` (no output) a different provenance type, so two activity
        // groups exist with their own U edges.
        let u_freqs: Vec<f64> =
            psg.edges.iter().filter(|e| e.kind == EK::Used).map(|e| e.frequency).collect();
        let g_freqs: Vec<f64> = psg
            .edges
            .iter()
            .filter(|e| e.kind == EK::WasGeneratedBy)
            .map(|e| e.frequency)
            .collect();
        assert!(!u_freqs.is_empty());
        assert!((g_freqs.iter().sum::<f64>() - 2.0 / 3.0).abs() < 1e-9);
        // Every frequency is a multiple of 1/3 in (0, 1].
        for f in u_freqs.iter().chain(g_freqs.iter()) {
            assert!(*f > 0.0 && *f <= 1.0);
            assert!((f * 3.0 - (f * 3.0).round()).abs() < 1e-9);
        }
    }

    #[test]
    fn compaction_ratio_counts_instances() {
        let (g, segs) = two_plus_one();
        let psg = summarize(&g, &segs, 1);
        assert_eq!(psg.input_vertex_count, 8); // 3+3+2
        assert!(psg.vertex_count() < 8, "some merging must happen");
        assert!(psg.compaction_ratio() < 1.0);
        assert!(psg.compaction_ratio() > 0.0);
    }

    #[test]
    fn type_tags_distinguish_same_name_groups() {
        let (g, segs) = two_plus_one();
        let psg = summarize(&g, &segs, 1);
        let train_labels: Vec<&str> = psg
            .vertices
            .iter()
            .filter(|v| v.kind == VertexKind::Activity)
            .map(|v| v.label.as_str())
            .collect();
        // Two provenance types of `train`: both tagged (t1)/(t2)? They are in
        // different CLASSES (class includes the provenance type), so tags
        // only appear when one class splits into several groups. Here each
        // class has one group: labels are untagged and distinct by name.
        assert_eq!(train_labels.len(), 2);
    }

    #[test]
    fn dot_render_mentions_frequencies() {
        let (g, segs) = two_plus_one();
        let psg = summarize(&g, &segs, 1);
        let dot = psg.to_dot();
        assert!(dot.contains("digraph psg"));
        assert!(dot.contains('%'));
    }

    #[test]
    fn empty_input_is_identity() {
        let g = ProvGraph::new();
        let psg = summarize(&g, &[], 1);
        assert_eq!(psg.vertex_count(), 0);
        assert_eq!(psg.compaction_ratio(), 1.0);
    }
}
