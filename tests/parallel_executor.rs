//! Cross-crate concurrency suite for the vendored work-stealing executor and
//! the parallel query kernels layered on it.
//!
//! Three layers, bottom to top:
//!
//! 1. the [`StealDeque`] itself under adversarial producer/stealer traffic —
//!    every task pushed is observed exactly once, no loss, no duplication;
//! 2. the pool's structured scopes under sustained nested load at several
//!    widths — spawn accounting never drifts;
//! 3. the public wire: a [`ProvService`] answering the same lineage requests
//!    must produce **byte-identical** JSON at every parallelism setting.
//!    The response order contract (sorted ascending, start excluded) is what
//!    makes the parallel BFS swappable for the sequential engine without
//!    clients noticing; this test is the regression net for that promise.
//!
//! The CI ThreadSanitizer lane runs this file with `-Zsanitizer=thread`, so
//! the stress tests double as race detectors for the shim.

use prov::api::{
    EntityRef, ExportRequest, ImportRequest, LineageDir, LineageRequest, ManualClock, ProvService,
    Request, Response,
};
use prov::core_api::ProvDb;
use prov::workload::{generate_pd, sources_at_percentile, PdParams};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon_core::{StealDeque, ThreadPool};
use std::sync::atomic::{AtomicUsize, Ordering};

// ---------------------------------------------------------------------------
// Layer 1: the deque
// ---------------------------------------------------------------------------

/// N producers push tagged tasks while popping some of their own work back
/// (the owner LIFO path) and M stealers drain the FIFO end with randomized
/// yields shaking the interleavings. When the dust settles, the union of
/// everything observed must be exactly the set of tasks pushed.
#[test]
fn steal_deque_observes_every_task_exactly_once() {
    const PRODUCERS: usize = 4;
    const STEALERS: usize = 4;
    const PER_PRODUCER: usize = 2_000;

    let deque: StealDeque<u64> = StealDeque::new();
    let live_producers = AtomicUsize::new(PRODUCERS);

    let mut observed: Vec<Vec<u64>> = Vec::new();
    std::thread::scope(|s| {
        let mut handles = Vec::new();
        for p in 0..PRODUCERS {
            let deque = &deque;
            let live = &live_producers;
            handles.push(s.spawn(move || {
                let mut rng = StdRng::seed_from_u64(p as u64);
                let mut taken = Vec::new();
                for i in 0..PER_PRODUCER {
                    deque.push((p * PER_PRODUCER + i) as u64);
                    // Owners interleave LIFO pops with their pushes, like a
                    // worker draining its own queue between spawns.
                    if rng.gen_bool(0.25) {
                        if let Some(v) = deque.pop() {
                            taken.push(v);
                        }
                    }
                    if rng.gen_bool(0.05) {
                        std::thread::yield_now();
                    }
                }
                live.fetch_sub(1, Ordering::Release);
                taken
            }));
        }
        for t in 0..STEALERS {
            let deque = &deque;
            let live = &live_producers;
            handles.push(s.spawn(move || {
                let mut rng = StdRng::seed_from_u64(1_000 + t as u64);
                let mut taken = Vec::new();
                loop {
                    match deque.steal() {
                        Some(v) => taken.push(v),
                        // Only safe to exit once no producer can push again
                        // AND the deque is drained; any task still in flight
                        // is already owned by some other thread's `taken`.
                        None if live.load(Ordering::Acquire) == 0 && deque.is_empty() => break,
                        None => std::thread::yield_now(),
                    }
                    if rng.gen_bool(0.1) {
                        std::thread::yield_now();
                    }
                }
                taken
            }));
        }
        for h in handles {
            observed.push(h.join().expect("no worker panics"));
        }
    });

    let mut all: Vec<u64> = observed.into_iter().flatten().collect();
    all.sort_unstable();
    let expected: Vec<u64> = (0..(PRODUCERS * PER_PRODUCER) as u64).collect();
    assert_eq!(all, expected, "every pushed task observed exactly once");
}

// ---------------------------------------------------------------------------
// Layer 2: the pool
// ---------------------------------------------------------------------------

/// Repeated scopes with nested child scopes at several pool widths — the
/// help-while-waiting discipline must neither deadlock (width 1 is the
/// pathological case) nor lose a single spawn.
#[test]
fn nested_scope_stress_accounts_for_every_spawn() {
    const OUTER: usize = 32;
    const INNER: usize = 8;
    for width in [1, 2, 4, 8] {
        let pool = ThreadPool::new(width);
        for round in 0..4 {
            let hits = AtomicUsize::new(0);
            pool.scope(|s| {
                for _ in 0..OUTER {
                    s.spawn(|| {
                        pool.scope(|inner| {
                            for _ in 0..INNER {
                                inner.spawn(|| {
                                    hits.fetch_add(1, Ordering::Relaxed);
                                });
                            }
                        });
                        hits.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
            assert_eq!(
                hits.load(Ordering::Relaxed),
                OUTER * (INNER + 1),
                "width {width} round {round}"
            );
        }
    }
}

/// `par_for` must cover each index exactly once even when the chunk count
/// exceeds the pool width (chunks queue and get stolen) and when it is 1
/// (degenerates to an inline loop).
#[test]
fn par_for_partitions_exactly_at_any_chunk_count() {
    let pool = ThreadPool::new(2);
    let n = 10_000;
    for chunks in [1, 2, 7, 64] {
        let marks: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        pool.par_for(n, chunks, |_, range| {
            for i in range {
                marks[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        let total: usize = marks.iter().map(|m| m.load(Ordering::Relaxed)).sum();
        assert_eq!(total, n, "chunks={chunks}");
        assert!(marks.iter().all(|m| m.load(Ordering::Relaxed) == 1), "chunks={chunks}");
    }
}

// ---------------------------------------------------------------------------
// Layer 3: the wire
// ---------------------------------------------------------------------------

/// The wire contract under parallelism: one frozen `Pd` graph, the same
/// lineage requests, services pinned at 1/2/4/8-chunk parallelism — every
/// serialized response must match byte for byte. The injected [`ManualClock`]
/// freezes the latency stamps so the comparison really covers the whole
/// response, envelope included.
#[test]
fn wire_output_is_byte_identical_across_thread_counts() {
    let graph = generate_pd(&PdParams::with_size(4_000));
    let late = sources_at_percentile(&graph, 95.0, 1)[0];
    let early = sources_at_percentile(&graph, 5.0, 1)[0];

    // Freeze the graph into the interchange document once; every service
    // under test imports the identical bytes.
    let doc = {
        let mut exporter = ProvService::from_db(ProvDb::from_graph(graph));
        match exporter.handle(&Request::Export(ExportRequest {})) {
            Response::Document(d) => d.json,
            other => panic!("export failed: {other:?}"),
        }
    };

    let requests: Vec<String> = [
        Request::Lineage(LineageRequest {
            entity: EntityRef::Id(late),
            direction: LineageDir::Ancestors,
            max_hops: None,
        }),
        Request::Lineage(LineageRequest {
            entity: EntityRef::Id(early),
            direction: LineageDir::Descendants,
            max_hops: None,
        }),
        Request::Lineage(LineageRequest {
            entity: EntityRef::Id(late),
            direction: LineageDir::Ancestors,
            max_hops: Some(6),
        }),
    ]
    .iter()
    .map(|r| serde_json::to_string(r).expect("requests serialize"))
    .collect();

    let mut transcripts: Vec<(usize, Vec<String>)> = Vec::new();
    for threads in [1, 2, 4, 8] {
        let mut service = ProvService::with_clock(Box::new(ManualClock::new()));
        service.set_parallelism(threads);
        assert_eq!(service.parallelism(), threads);
        let imported = service.handle(&Request::Import(ImportRequest { json: doc.clone() }));
        assert!(!imported.is_error(), "import at parallelism {threads}");
        let transcript: Vec<String> = requests.iter().map(|r| service.handle_json(r)).collect();
        transcripts.push((threads, transcript));
    }

    let (_, reference) = &transcripts[0];
    // The sequential engine must have produced real closures — a vacuously
    // empty transcript would make the cross-width comparison meaningless.
    for response in reference {
        assert!(response.contains("\"Lineage\""), "unexpected response: {response}");
    }
    assert!(reference[0].len() > 100, "full ancestor closure should be non-trivial");

    for (threads, transcript) in &transcripts[1..] {
        assert_eq!(transcript, reference, "wire output diverged at parallelism {threads}");
    }
}
