//! Regenerate the paper's evaluation figures — as text tables or as the
//! machine-readable `BENCH_fig5.json` / `BENCH_fig6.json` trajectories.
//!
//! ```sh
//! # Text tables (any subset of 5a..5h, wl, 6a..6c, or `all`):
//! cargo run -p prov-bench --release --bin figure -- all          # full scale
//! cargo run -p prov-bench --release --bin figure -- 5a --quick   # smoke run
//!
//! # Benchmark mode: run the Fig. 5(a)-(d) sweeps + the worklist ablation,
//! # write the JSON trajectory, and (optionally) gate against a baseline:
//! cargo run -p prov-bench --release -- --quick --json BENCH_fig5.json
//! cargo run -p prov-bench --release -- --quick --json BENCH_fig5.new.json \
//!     --baseline BENCH_fig5.json
//!
//! # The summarization trajectory (`fig6` shorthand for 6a 6b 6c):
//! cargo run -p prov-bench --release -- --quick fig6 --json BENCH_fig6.json
//!
//! # The serving-loop trajectory (`fig7` shorthand for 7a 7b 7c):
//! cargo run -p prov-bench --release -- --quick fig7 --json BENCH_fig7.json
//!
//! # The query-layer trajectory (`fig8` shorthand for 8a 8b 8t):
//! cargo run -p prov-bench --release -- --quick fig8 --json BENCH_fig8.json
//!
//! # The cold-start recovery trajectory (`coldstart` shorthand for cs):
//! cargo run -p prov-bench --release -- --quick coldstart --json BENCH_coldstart.json
//!
//! # The durable-ingest trajectory (`fig10` shorthand for 10a 10b):
//! cargo run -p prov-bench --release -- --quick fig10 --json BENCH_fig10.json
//! ```
//!
//! With `--baseline`, the process exits non-zero when any matched series
//! point regressed more than [`prov_bench::REGRESSION_FACTOR`]× — the CI
//! perf gate. Bench mode always prints the compact trajectory summary table
//! (largest point per series, speedup vs the figure's reference series and
//! vs the committed baseline) so the CI job log is readable on its own.

use prov_bench::{
    run_figure_with_caches, BenchReport, FigureResult, PdCache, Scale, SdCache, ALL_FIGURES,
    BENCH_FIGURES, COLDSTART_FIGURES, FIG10_FIGURES, FIG6_FIGURES, FIG7_FIGURES, FIG8_FIGURES,
};

struct Cli {
    quick: bool,
    json: Option<String>,
    baseline: Option<String>,
    ids: Vec<String>,
}

fn parse_args(args: &[String]) -> Result<Cli, String> {
    let mut cli = Cli { quick: false, json: None, baseline: None, ids: Vec::new() };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => cli.quick = true,
            "--json" => {
                cli.json = Some(it.next().ok_or("--json needs a path")?.clone());
            }
            "--baseline" => {
                cli.baseline = Some(it.next().ok_or("--baseline needs a path")?.clone());
            }
            flag if flag.starts_with("--") => return Err(format!("unknown flag {flag:?}")),
            id => cli.ids.push(id.to_string()),
        }
    }
    Ok(cli)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_args(&args) {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let scale = if cli.quick { Scale::Quick } else { Scale::Full };
    let bench_mode = cli.json.is_some() || cli.baseline.is_some();
    let ids: Vec<String> = if cli.ids.is_empty() {
        let defaults: &[&str] = if bench_mode { &BENCH_FIGURES } else { &ALL_FIGURES };
        defaults.iter().map(|s| s.to_string()).collect()
    } else if cli.ids.iter().any(|i| i == "all") {
        ALL_FIGURES.iter().map(|s| s.to_string()).collect()
    } else {
        // `fig6`/`fig7`/`fig8` expand to their trajectory subsets.
        cli.ids
            .iter()
            .flat_map(|id| match id.as_str() {
                "fig6" => FIG6_FIGURES.iter().map(|s| s.to_string()).collect(),
                "fig7" => FIG7_FIGURES.iter().map(|s| s.to_string()).collect(),
                "fig8" => FIG8_FIGURES.iter().map(|s| s.to_string()).collect(),
                "coldstart" => COLDSTART_FIGURES.iter().map(|s| s.to_string()).collect(),
                "fig10" => FIG10_FIGURES.iter().map(|s| s.to_string()).collect(),
                _ => vec![id.clone()],
            })
            .collect()
    };

    // One instance cache per workload family across every requested figure:
    // each Pd graph / Sd segment set is generated and frozen exactly once
    // per invocation.
    let mut pd_cache = PdCache::new();
    let mut sd_cache = SdCache::new();
    let mut figures: Vec<FigureResult> = Vec::new();
    for id in &ids {
        match run_figure_with_caches(id, scale, &mut pd_cache, &mut sd_cache) {
            Some(fig) => {
                println!("{}", fig.render());
                figures.push(fig);
            }
            None => {
                eprintln!(
                    "unknown figure id {id:?}; valid: {ALL_FIGURES:?}, `fig6`, `fig7`, `fig8`, \
                     `coldstart`, `fig10`, or `all`"
                );
                std::process::exit(2);
            }
        }
    }

    if !bench_mode {
        return;
    }
    // Record the exact invocation that regenerates the chosen target.
    let command = {
        let mut parts = vec!["cargo run -p prov-bench --release --".to_string()];
        if cli.quick {
            parts.push("--quick".into());
        }
        parts.extend(ids.iter().cloned());
        parts.push(format!("--json {}", cli.json.as_deref().unwrap_or("BENCH.json")));
        parts.join(" ")
    };
    let report = BenchReport::from_figures(scale, &figures, command);
    if let Some(path) = &cli.json {
        // lint-ok(raw-io): bench report artifact, nothing durable flows here.
        if let Err(e) = std::fs::write(path, report.to_json()) {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(2);
        }
        println!("wrote {path} ({} figures)", report.figures.len());
    }
    let baseline = cli.baseline.as_ref().map(|path| {
        // lint-ok(raw-io): reads a committed baseline report, not engine state.
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read baseline {path}: {e}");
                std::process::exit(2);
            }
        };
        match BenchReport::from_json(&text) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(2);
            }
        }
    });
    // The compact per-figure trajectory summary: always printed in bench
    // mode so a CI job log carries the perf story without artifacts.
    let summary = report.summary_table(baseline.as_ref());
    print!("{summary}");
    // Mirror it into the GitHub job summary when CI provides one (append:
    // the fig5/fig6/fig7 invocations of one job share the file).
    if let Ok(path) = std::env::var("GITHUB_STEP_SUMMARY") {
        use std::io::Write;
        let md = format!(
            "### prov-bench trajectory ({} figures, host_threads={})\n\n```text\n{summary}```\n\n",
            report.figures.len(),
            report.host_threads
        );
        // lint-ok(raw-io): CI job-summary sink owned by the runner, not us.
        let appended = std::fs::OpenOptions::new()
            .append(true)
            .create(true)
            .open(&path)
            .and_then(|mut f| f.write_all(md.as_bytes()));
        if let Err(e) = appended {
            eprintln!("cannot append to GITHUB_STEP_SUMMARY ({path}): {e}");
        }
    }
    if let Some(baseline) = &baseline {
        let path = cli.baseline.as_deref().unwrap_or_default();
        let regressions = report.regressions_against(baseline);
        if regressions.is_empty() {
            println!("perf gate: OK (no series regressed beyond the committed baseline)");
        } else {
            eprintln!("perf gate: {} regression(s) against {path}:", regressions.len());
            for r in &regressions {
                eprintln!("  {r}");
            }
            std::process::exit(1);
        }
    }
}
