//! Fast set data structures for CFL-reachability fact tables.
//!
//! The CflrB algorithm of Chaudhuri (POPL'08) — the state-of-the-art baseline the
//! paper compares against — relies on a "fast set" structure supporting
//! `O(n / log n)` set difference/union and `O(1)` insert. The paper's Java
//! implementation uses `java.util.BitSet` for constant random access and
//! RoaringBitmap as a compressed alternative with better memory behaviour at the
//! price of non-constant random reads/writes (Sec. III-B and Sec. V(a)).
//!
//! This crate provides the Rust equivalents used throughout the reproduction:
//!
//! * [`FixedBitSet`] — a plain, word-addressed bit set over a fixed universe
//!   (`Java BitSet` analogue). All bulk operations work a 64-bit word at a time.
//! * [`CompressedBitmap`] — a roaring-style two-level bitmap: the 32-bit key space
//!   is chunked by the high 16 bits, each chunk stored either as a sorted array of
//!   low 16-bit values (≤ [`ARRAY_CONTAINER_MAX`] entries) or as a 65536-bit
//!   bitmap (RoaringBitmap analogue).
//! * [`FastSet`] — the common trait the CFLR solvers are generic over, including
//!   the `collect_missing` primitive that implements CflrB's
//!   `Col(u, C) \ Col(v, A)` set difference and the batch
//!   `insert_returning_new` primitive behind SimProvAlg's pair-encoded
//!   worklist.
//! * [`PairTable`] — a row/column-indexed pair relation over packed `u64`
//!   words, the fact-table layout SimProvAlg's rewritten inner loop uses for
//!   its symmetric `Ee`/`Aa` relations (generic over both backends above).
//!
//! Both implementations are exercised by differential property tests against
//! `BTreeSet<u32>`.

pub mod compressed;
pub mod fixed;
pub mod pairs;
pub mod traits;

pub use compressed::{CompressedBitmap, ARRAY_CONTAINER_MAX};
pub use fixed::FixedBitSet;
pub use pairs::{pack_pair, unpack_pair, PairTable};
pub use traits::FastSet;

/// A set representation choice, used by benchmarks and solvers to select the
/// fact-table backend at runtime (mirrors the paper's `BitSet` vs `Cbm` variants).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SetBackend {
    /// `std::collections::HashSet`-backed (no preallocation; baseline of baselines).
    Hash,
    /// [`FixedBitSet`]-backed (the paper's default "fast set").
    Bit,
    /// [`CompressedBitmap`]-backed (the paper's `w CBM` variants).
    Compressed,
}

impl SetBackend {
    /// All backends, in the order the paper presents them.
    pub const ALL: [SetBackend; 3] = [SetBackend::Hash, SetBackend::Bit, SetBackend::Compressed];

    /// Short label used in benchmark output.
    pub fn label(self) -> &'static str {
        match self {
            SetBackend::Hash => "hash",
            SetBackend::Bit => "bitset",
            SetBackend::Compressed => "cbm",
        }
    }
}

impl std::fmt::Display for SetBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_labels_are_distinct() {
        let mut labels: Vec<_> = SetBackend::ALL.iter().map(|b| b.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), SetBackend::ALL.len());
    }

    #[test]
    fn backend_display_matches_label() {
        for b in SetBackend::ALL {
            assert_eq!(b.to_string(), b.label());
        }
    }
}
