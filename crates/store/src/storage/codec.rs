//! Little-endian binary primitives shared by the WAL record codec and the
//! columnar snapshot codec.
//!
//! The vendored serde shim is JSON-only, so durable bytes use a small
//! hand-rolled format: fixed-width little-endian integers, length-prefixed
//! UTF-8 strings, tagged [`PropValue`]s, and IEEE CRC-32 for integrity.
//! Decoding returns `Err(String)` describing the first malformed field; the
//! storage layer maps that to torn-tail truncation or
//! [`crate::StoreError::CorruptLog`] depending on where it happens.

use prov_model::PropValue;
use std::sync::Arc;

/// IEEE CRC-32 lookup table, built at compile time.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        // lint-ok(narrowing-cast): i is the loop counter, 0..256.
        let mut c = i as u32;
        let mut bit = 0;
        while bit < 8 {
            c = if c & 1 != 0 { 0xedb8_8320 ^ (c >> 1) } else { c >> 1 };
            bit += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// IEEE CRC-32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xffff_ffffu32;
    for &b in bytes {
        // lint-ok(narrowing-cast): widening, b is a u8.
        c = CRC_TABLE[((c ^ b as u32) & 0xff) as usize] ^ (c >> 8);
    }
    c ^ 0xffff_ffff
}

/// Append a `u8`.
pub fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

/// Append a little-endian `u32`.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a little-endian `u64`.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a length-prefixed UTF-8 string.
pub fn put_str(out: &mut Vec<u8>, s: &str) {
    // lint-ok(narrowing-cast): strings here are names/keys, far below 4 GiB.
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

/// Append a tagged [`PropValue`].
pub fn put_prop_value(out: &mut Vec<u8>, v: &PropValue) {
    match v {
        PropValue::Str(s) => {
            put_u8(out, 0);
            put_str(out, s);
        }
        PropValue::Int(i) => {
            put_u8(out, 1);
            put_u64(out, *i as u64);
        }
        PropValue::Float(f) => {
            put_u8(out, 2);
            put_u64(out, f.to_bits());
        }
        PropValue::Bool(b) => {
            put_u8(out, 3);
            // lint-ok(narrowing-cast): bool is 0 or 1 by definition.
            put_u8(out, *b as u8);
        }
    }
}

/// A bounds-checked cursor over an encoded byte slice.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Read from the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True once every byte is consumed.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], String> {
        if self.remaining() < n {
            return Err(format!(
                "truncated {what}: need {n} bytes, {} remain at offset {}",
                self.remaining(),
                self.pos
            ));
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Read a `u8`.
    pub fn u8(&mut self, what: &str) -> Result<u8, String> {
        Ok(self.take(1, what)?[0])
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self, what: &str) -> Result<u32, String> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self, what: &str) -> Result<u64, String> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn str(&mut self, what: &str) -> Result<Arc<str>, String> {
        let len = self.u32(what)? as usize;
        let bytes = self.take(len, what)?;
        std::str::from_utf8(bytes)
            .map(Arc::from)
            .map_err(|e| format!("invalid UTF-8 in {what}: {e}"))
    }

    /// Read a tagged [`PropValue`].
    pub fn prop_value(&mut self, what: &str) -> Result<PropValue, String> {
        match self.u8(what)? {
            0 => Ok(PropValue::Str(self.str(what)?)),
            1 => Ok(PropValue::Int(self.u64(what)? as i64)),
            2 => Ok(PropValue::Float(f64::from_bits(self.u64(what)?))),
            3 => Ok(PropValue::Bool(self.u8(what)? != 0)),
            tag => Err(format!("unknown value tag {tag} in {what}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // The canonical IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
        assert_ne!(crc32(b"abc"), crc32(b"abd"));
    }

    #[test]
    fn scalars_round_trip() {
        let mut out = Vec::new();
        put_u8(&mut out, 7);
        put_u32(&mut out, 0xdead_beef);
        put_u64(&mut out, u64::MAX - 1);
        put_str(&mut out, "weights-v1");
        let mut r = Reader::new(&out);
        assert_eq!(r.u8("a").unwrap(), 7);
        assert_eq!(r.u32("b").unwrap(), 0xdead_beef);
        assert_eq!(r.u64("c").unwrap(), u64::MAX - 1);
        assert_eq!(&*r.str("d").unwrap(), "weights-v1");
        assert!(r.is_exhausted());
    }

    #[test]
    fn prop_values_round_trip_including_nan() {
        let values = [
            PropValue::from("vgg16"),
            PropValue::from(-42i64),
            PropValue::from(0.75),
            PropValue::Float(f64::NAN),
            PropValue::from(true),
        ];
        let mut out = Vec::new();
        for v in &values {
            put_prop_value(&mut out, v);
        }
        let mut r = Reader::new(&out);
        for v in &values {
            // PropValue equality is bitwise for floats, so NaN round-trips.
            assert_eq!(&r.prop_value("v").unwrap(), v);
        }
        assert!(r.is_exhausted());
    }

    #[test]
    fn truncation_and_bad_tags_name_the_field() {
        let mut r = Reader::new(&[1, 2]);
        let err = r.u32("watermark").unwrap_err();
        assert!(err.contains("truncated watermark"), "{err}");
        let mut r = Reader::new(&[9]);
        let err = r.prop_value("acc").unwrap_err();
        assert!(err.contains("unknown value tag 9"), "{err}");
        // A string length pointing past the buffer is truncation, not UB.
        let mut bad = Vec::new();
        put_u32(&mut bad, 100);
        bad.push(b'x');
        assert!(Reader::new(&bad).str("name").is_err());
    }
}
