//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! offline `serde` shim.
//!
//! Understands exactly the item shapes this workspace derives on (no
//! generics): named-field structs, newtype (single-field tuple) structs,
//! all-unit enums, and all-newtype enums; and the attribute subset
//! `#[serde(transparent)]`, `#[serde(untagged)]`, `#[serde(default)]`,
//! `#[serde(skip_serializing_if = "path")]`. Anything else is a compile
//! error with a pointed message rather than silently wrong codegen.
//!
//! Newtype enums follow real serde's tagging rules: by default they are
//! **externally tagged** (`{"Variant": inner}` on the wire — what the
//! `prov-api` request/response envelope relies on); with
//! `#[serde(untagged)]` on the container they serialize as the bare inner
//! value and deserialize by trying variants in declaration order.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Field {
    name: String,
    default: bool,
    skip_if: Option<String>,
}

struct Variant {
    name: String,
    /// Inner type tokens for a newtype variant, `None` for a unit variant.
    newtype: Option<String>,
}

enum Item {
    NamedStruct { name: String, fields: Vec<Field> },
    NewtypeStruct { name: String },
    UnitEnum { name: String, variants: Vec<String> },
    NewtypeEnum { name: String, variants: Vec<Variant>, untagged: bool },
}

/// Serde attribute words attached to one attr target (container or field).
#[derive(Default)]
struct SerdeAttrs {
    default: bool,
    skip_if: Option<String>,
    /// Container-level `#[serde(untagged)]`: newtype enums serialize as the
    /// bare inner value instead of an externally tagged single-key object.
    untagged: bool,
    // `transparent` only changes behaviour we already infer from the item
    // shape (newtype structs), so it is accepted and ignored.
}

fn parse_serde_attr(group: &proc_macro::Group, out: &mut SerdeAttrs) {
    let mut tokens = group.stream().into_iter().peekable();
    // Attr content looks like `serde ( meta , meta , ... )`.
    let Some(TokenTree::Ident(first)) = tokens.next() else { return };
    if first.to_string() != "serde" {
        return;
    }
    let Some(TokenTree::Group(inner)) = tokens.next() else { return };
    let mut inner = inner.stream().into_iter().peekable();
    while let Some(tt) = inner.next() {
        let TokenTree::Ident(word) = tt else { continue };
        match word.to_string().as_str() {
            "default" => out.default = true,
            "skip_serializing_if" => {
                // `= "Some::path"`
                let _eq = inner.next();
                if let Some(TokenTree::Literal(lit)) = inner.next() {
                    out.skip_if = Some(lit.to_string().trim_matches('"').to_string());
                }
            }
            "untagged" => out.untagged = true,
            "transparent" => {}
            other => panic!("serde shim derive: unsupported serde attribute `{other}`"),
        }
    }
}

/// Consume leading `#[...]` attributes, collecting serde metas.
fn skip_attrs(tokens: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) -> SerdeAttrs {
    let mut attrs = SerdeAttrs::default();
    while matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        tokens.next();
        if let Some(TokenTree::Group(g)) = tokens.next() {
            if g.delimiter() == Delimiter::Bracket {
                parse_serde_attr(&g, &mut attrs);
            }
        }
    }
    attrs
}

fn skip_visibility(tokens: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) {
    if matches!(tokens.peek(), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
        tokens.next();
        if matches!(tokens.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            tokens.next();
        }
    }
}

/// Parse the fields of a `{ ... }` struct body.
fn parse_named_fields(body: proc_macro::Group) -> Vec<Field> {
    let mut fields = Vec::new();
    let mut tokens = body.stream().into_iter().peekable();
    loop {
        let attrs = skip_attrs(&mut tokens);
        skip_visibility(&mut tokens);
        let Some(TokenTree::Ident(name)) = tokens.next() else { break };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde shim derive: expected `:` after field name, got {other:?}"),
        }
        // Consume the type, tracking angle-bracket depth so commas inside
        // generics (e.g. `BTreeMap<String, PropValue>`) don't end the field.
        let mut angle_depth = 0i32;
        for tt in tokens.by_ref() {
            match tt {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => break,
                _ => {}
            }
        }
        fields.push(Field {
            name: name.to_string(),
            default: attrs.default,
            skip_if: attrs.skip_if,
        });
    }
    fields
}

/// Parse the variants of an `enum { ... }` body.
fn parse_variants(body: proc_macro::Group) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut tokens = body.stream().into_iter().peekable();
    loop {
        let _attrs = skip_attrs(&mut tokens);
        let Some(TokenTree::Ident(name)) = tokens.next() else { break };
        let mut newtype = None;
        if let Some(TokenTree::Group(g)) = tokens.peek() {
            if g.delimiter() == Delimiter::Parenthesis {
                newtype = Some(g.stream().to_string());
                tokens.next();
            } else {
                panic!("serde shim derive: struct-like enum variants are unsupported");
            }
        }
        // Skip everything up to the variant separator (covers discriminants).
        for tt in tokens.by_ref() {
            if matches!(&tt, TokenTree::Punct(p) if p.as_char() == ',') {
                break;
            }
        }
        variants.push(Variant { name: name.to_string(), newtype });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let mut tokens = input.into_iter().peekable();
    let container_attrs = skip_attrs(&mut tokens);
    skip_visibility(&mut tokens);
    let keyword = match tokens.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("serde shim derive: expected `struct` or `enum`, got {other:?}"),
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("serde shim derive: expected item name, got {other:?}"),
    };
    if matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde shim derive: generic types are unsupported (deriving `{name}`)");
    }
    let body = match tokens.next() {
        Some(TokenTree::Group(g)) => g,
        other => panic!("serde shim derive: expected item body for `{name}`, got {other:?}"),
    };
    match (keyword.as_str(), body.delimiter()) {
        ("struct", Delimiter::Brace) => {
            Item::NamedStruct { name, fields: parse_named_fields(body) }
        }
        ("struct", Delimiter::Parenthesis) => {
            let inner = body.stream().to_string();
            let depth_zero_commas = count_top_level_commas(&inner);
            if depth_zero_commas > 0 {
                panic!("serde shim derive: multi-field tuple structs are unsupported (`{name}`)");
            }
            Item::NewtypeStruct { name }
        }
        ("enum", Delimiter::Brace) => {
            let variants = parse_variants(body);
            if variants.iter().all(|v| v.newtype.is_none()) {
                Item::UnitEnum { name, variants: variants.into_iter().map(|v| v.name).collect() }
            } else if variants.iter().all(|v| v.newtype.is_some()) {
                Item::NewtypeEnum { name, variants, untagged: container_attrs.untagged }
            } else {
                panic!("serde shim derive: enums must be all-unit or all-newtype (`{name}`)");
            }
        }
        _ => panic!("serde shim derive: unsupported item shape for `{name}`"),
    }
}

/// Count commas outside any `< >` / `( )` nesting in a flat type string.
fn count_top_level_commas(s: &str) -> usize {
    let mut depth = 0i32;
    let mut count = 0;
    for c in s.chars() {
        match c {
            '<' | '(' => depth += 1,
            '>' | ')' => depth -= 1,
            ',' if depth == 0 => count += 1,
            _ => {}
        }
    }
    count
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let code = match parse_item(input) {
        Item::NamedStruct { name, fields } => {
            let mut pushes = String::new();
            for f in &fields {
                let fname = &f.name;
                let push = format!(
                    "__m.push((\"{fname}\".to_string(), ::serde::Serialize::ser(&self.{fname})));"
                );
                if let Some(skip) = &f.skip_if {
                    pushes.push_str(&format!("if !{skip}(&self.{fname}) {{ {push} }}\n"));
                } else {
                    pushes.push_str(&push);
                    pushes.push('\n');
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn ser(&self) -> ::serde::Content {{\n\
                         let mut __m: Vec<(String, ::serde::Content)> = Vec::new();\n\
                         {pushes}\
                         ::serde::Content::Map(__m)\n\
                     }}\n\
                 }}"
            )
        }
        Item::NewtypeStruct { name } => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn ser(&self) -> ::serde::Content {{ ::serde::Serialize::ser(&self.0) }}\n\
             }}"
        ),
        Item::UnitEnum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{name}::{v} => \"{v}\",\n"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn ser(&self) -> ::serde::Content {{\n\
                         ::serde::Content::Str(match self {{ {arms} }}.to_string())\n\
                     }}\n\
                 }}"
            )
        }
        Item::NewtypeEnum { name, variants, untagged } => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    if untagged {
                        format!("{name}::{vname} (__x) => ::serde::Serialize::ser(__x),\n")
                    } else {
                        format!(
                            "{name}::{vname} (__x) => ::serde::Content::Map(vec![(\
                                 \"{vname}\".to_string(), ::serde::Serialize::ser(__x))]),\n"
                        )
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn ser(&self) -> ::serde::Content {{ match self {{ {arms} }} }}\n\
                 }}"
            )
        }
    };
    code.parse().expect("serde shim derive: generated Serialize impl failed to parse")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let code = match parse_item(input) {
        Item::NamedStruct { name, fields } => {
            let mut inits = String::new();
            for f in &fields {
                let fname = &f.name;
                let missing = if f.default || f.skip_if.is_some() {
                    "::core::default::Default::default()".to_string()
                } else {
                    format!(
                        "return Err(::serde::Error::msg(\"missing field `{fname}` in {name}\"))"
                    )
                };
                inits.push_str(&format!(
                    "{fname}: match __content.get_field(\"{fname}\") {{\n\
                         Some(__v) => ::serde::Deserialize::de(__v)?,\n\
                         None => {missing},\n\
                     }},\n"
                ));
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn de(__content: &::serde::Content) -> Result<Self, ::serde::Error> {{\n\
                         if __content.as_map().is_none() {{\n\
                             return Err(::serde::Error::msg(\
                                 format!(\"expected object for {name}, found {{}}\", __content.type_name())));\n\
                         }}\n\
                         Ok({name} {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Item::NewtypeStruct { name } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
                 fn de(__content: &::serde::Content) -> Result<Self, ::serde::Error> {{\n\
                     Ok({name}(::serde::Deserialize::de(__content)?))\n\
                 }}\n\
             }}"
        ),
        Item::UnitEnum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| format!("\"{v}\" => Ok({name}::{v}),\n"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn de(__content: &::serde::Content) -> Result<Self, ::serde::Error> {{\n\
                         match __content {{\n\
                             ::serde::Content::Str(__s) => match __s.as_str() {{\n\
                                 {arms}\
                                 __other => Err(::serde::Error::msg(\
                                     format!(\"unknown {name} variant {{__other:?}}\"))),\n\
                             }},\n\
                             __other => Err(::serde::Error::msg(\
                                 format!(\"expected string for {name}, found {{}}\", __other.type_name()))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
        Item::NewtypeEnum { name, variants, untagged } => {
            if untagged {
                // Untagged: try variants in declaration order, first success wins.
                let tries: String = variants
                    .iter()
                    .map(|v| {
                        let ty = v.newtype.as_ref().expect("newtype variant has a type");
                        format!(
                            "if let Ok(__x) = <{ty} as ::serde::Deserialize>::de(__content) {{\n\
                                 return Ok({name}::{}(__x));\n\
                             }}\n",
                            v.name
                        )
                    })
                    .collect();
                format!(
                    "impl ::serde::Deserialize for {name} {{\n\
                         fn de(__content: &::serde::Content) -> Result<Self, ::serde::Error> {{\n\
                             {tries}\
                             Err(::serde::Error::msg(\
                                 format!(\"no {name} variant matched a {{}}\", __content.type_name())))\n\
                         }}\n\
                     }}"
                )
            } else {
                // Externally tagged: a single-key object selects the variant.
                let arms: String = variants
                    .iter()
                    .map(|v| {
                        let ty = v.newtype.as_ref().expect("newtype variant has a type");
                        format!(
                            "\"{vname}\" => Ok({name}::{vname}(\
                                 <{ty} as ::serde::Deserialize>::de(__inner)?)),\n",
                            vname = v.name
                        )
                    })
                    .collect();
                format!(
                    "impl ::serde::Deserialize for {name} {{\n\
                         fn de(__content: &::serde::Content) -> Result<Self, ::serde::Error> {{\n\
                             let __entries = __content.as_map().ok_or_else(|| ::serde::Error::msg(\
                                 format!(\"expected tagged object for {name}, found {{}}\", \
                                         __content.type_name())))?;\n\
                             let [(__tag, __inner)] = __entries else {{\n\
                                 return Err(::serde::Error::msg(\
                                     \"expected a single-key tagged object for {name}\"));\n\
                             }};\n\
                             match __tag.as_str() {{\n\
                                 {arms}\
                                 __other => Err(::serde::Error::msg(\
                                     format!(\"unknown {name} variant {{__other:?}}\"))),\n\
                             }}\n\
                         }}\n\
                     }}"
                )
            }
        }
    };
    code.parse().expect("serde shim derive: generated Deserialize impl failed to parse")
}
